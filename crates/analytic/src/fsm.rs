//! Protocol state machines as data.
//!
//! The paper's Section-II mechanisms used to be encoded three times by
//! hand — once in the analytic transition builders, once in the
//! event-driven simulators, once in `docs/protocols.md` — with only golden
//! tests keeping the copies honest.  This module collapses them to one
//! declarative source: a transition table of
//! `(state, event, guard, actions, next_state, rate)` rows generated from
//! any [`ProtocolSpec`].
//!
//! Three consumers read the same rows:
//!
//! * the analytic builders
//!   ([`protocol_transitions_into`](crate::single_hop::transitions::protocol_transitions_into),
//!   [`multi_hop_transitions_into`](crate::multi_hop::transitions::multi_hop_transitions_into))
//!   evaluate each row's [rate expression](SingleHopRate) and keep exactly
//!   the positive-rate edges — bit-identical to the historical
//!   predicate-derived builders, which survive as `*_reference` functions
//!   for the model checker's agreement property;
//! * the simulators derive their mechanism dispatch — which timers to arm,
//!   which messages to ack — from the table's actions via [`FsmDispatch`];
//! * the docs and the `repro --list-transitions` command render the rows
//!   symbolically.
//!
//! The `sigfsm` crate model-checks the table per spec (reachability,
//! liveness, agreement over all coherent specs); `repro check-specs` runs
//! that checker from the command line.

use crate::multi_hop::states::MultiHopState;
use crate::multi_hop::transitions::{
    multi_hop_attempt_interval, slow_repair_rate, timeout_cascade_rate_with_interval,
    MultiHopRateEntry,
};
use crate::params::{MultiHopParams, SingleHopParams};
use crate::single_hop::states::SingleHopState;
use crate::single_hop::transitions::{
    false_removal_rate, orphan_cleanup_rate, removal_delivery_rate, slow_path_repair_rate,
    RateEntry,
};
use crate::spec::ProtocolSpec;
use std::fmt;

/// The event that fires a single-hop transition (Figure 3 narrative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SingleHopEvent {
    /// A trigger (setup or update) message reaches the receiver.
    TriggerDelivered,
    /// A trigger message is lost in the channel.
    TriggerLost,
    /// A repairing message (refresh or retransmission) reaches the receiver.
    RepairDelivered,
    /// The sender changes the state (rate `λ_u`).
    SenderUpdate,
    /// The sender removes the state (rate `λ_r`).
    SenderRemoval,
    /// The receiver falsely removes live state (timeout starvation or a
    /// false external failure signal; rate `λ_f`).
    FalseRemoval,
    /// An explicit removal message reaches the receiver.
    RemovalDelivered,
    /// The receiver's state timeout reclaims state the sender has removed.
    ReceiverTimeout,
    /// An explicit removal message is lost in the channel.
    RemovalLost,
    /// Orphaned receiver state is finally cleaned up (timeout backstop
    /// and/or retransmitted removal).
    OrphanCleanup,
}

impl SingleHopEvent {
    /// Short human-readable name.
    pub fn describe(&self) -> &'static str {
        match self {
            Self::TriggerDelivered => "trigger delivered",
            Self::TriggerLost => "trigger lost",
            Self::RepairDelivered => "repair delivered",
            Self::SenderUpdate => "sender update",
            Self::SenderRemoval => "sender removal",
            Self::FalseRemoval => "false removal",
            Self::RemovalDelivered => "removal delivered",
            Self::ReceiverTimeout => "receiver timeout",
            Self::RemovalLost => "removal lost",
            Self::OrphanCleanup => "orphan cleanup",
        }
    }
}

/// The event that fires a multi-hop transition (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiHopEvent {
    /// The sender changes the state; every hop becomes inconsistent.
    SenderUpdate,
    /// The trigger reaches the next hop on the fast path.
    TriggerDelivered,
    /// The trigger is lost before the next hop.
    TriggerLost,
    /// A refresh or retransmission repairs the first inconsistent hop.
    RepairDelivered,
    /// The first state timeout fires at some hop, truncating the
    /// consistent prefix (Equation 9).
    TimeoutCascade,
    /// A false external failure signal removes state at some hop.
    FalseExternalSignal,
    /// The sender learns of the false removal and re-installs state.
    SenderRecovers,
}

impl MultiHopEvent {
    /// Short human-readable name.
    pub fn describe(&self) -> &'static str {
        match self {
            Self::SenderUpdate => "sender update",
            Self::TriggerDelivered => "trigger delivered",
            Self::TriggerLost => "trigger lost",
            Self::RepairDelivered => "repair delivered",
            Self::TimeoutCascade => "timeout cascade",
            Self::FalseExternalSignal => "false external signal",
            Self::SenderRecovers => "sender recovers",
        }
    }
}

/// Structural guard of a table row: the mechanism predicate that must hold
/// for the transition to exist at all (independent of the numeric
/// parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guard {
    /// Unconditional — the row exists for every coherent spec.
    Always,
    /// Some slow-path repair mechanism exists
    /// (`uses_refresh || retransmits_repairs`).
    CanRepair,
    /// The protocol sends explicit removal messages.
    UsesExplicitRemoval,
    /// Orphaned state left by a lost removal can still be cleaned up
    /// (`uses_explicit_removal && (uses_state_timeout || reliable_removal)`).
    HasOrphanCleanup,
    /// The receiver runs a state-timeout timer.
    UsesStateTimeout,
    /// The protocol relies on an external failure detector
    /// (`!uses_state_timeout`).
    HasExternalDetector,
}

impl Guard {
    /// Whether the guard holds for `spec`.
    pub fn holds(&self, spec: &ProtocolSpec) -> bool {
        match self {
            Self::Always => true,
            Self::CanRepair => spec.uses_refresh() || spec.retransmits_repairs(),
            Self::UsesExplicitRemoval => spec.uses_explicit_removal(),
            Self::HasOrphanCleanup => {
                spec.uses_explicit_removal()
                    && (spec.uses_state_timeout() || spec.reliable_removal())
            }
            Self::UsesStateTimeout => spec.uses_state_timeout(),
            Self::HasExternalDetector => spec.has_external_detector(),
        }
    }

    /// Short human-readable name.
    pub fn describe(&self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::CanRepair => "can-repair",
            Self::UsesExplicitRemoval => "explicit-removal",
            Self::HasOrphanCleanup => "orphan-cleanup",
            Self::UsesStateTimeout => "state-timeout",
            Self::HasExternalDetector => "external-detector",
        }
    }
}

/// One mechanism action attached to a table row.  The action set of a row
/// encodes exactly which of the spec's mechanisms participate in the
/// transition, so [`FsmDispatch`] — the capability set the simulators
/// branch on — is derivable from the table alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Install (or overwrite) the state at the receiver.
    InstallReceiverState,
    /// Restart the receiver's state-timeout timer.
    RestartStateTimeout,
    /// Ack the trigger hop-by-hop (reliable triggers).
    AckTrigger,
    /// Ack the refresh (reliable refreshes).
    AckRefresh,
    /// Ack the removal (reliable removal).
    AckRemoval,
    /// Send a trigger message.
    SendTrigger,
    /// Arm the trigger retransmission timer.
    ArmTriggerRetransmit,
    /// Track the refresh sequence for ack-based retransmission.
    TrackPendingRefresh,
    /// Send an explicit removal message.
    SendRemoval,
    /// Arm the removal retransmission timer.
    ArmRemovalRetransmit,
    /// The repair was carried by the periodic refresh stream.
    RepairByRefresh,
    /// The repair was carried by a retransmission.
    RepairByRetransmit,
    /// Notify the sender of the (false) removal.
    NotifySender,
    /// Drop the state at the receiver.
    DropReceiverState,
    /// The receiver's state timeout expired.
    ExpireStateTimeout,
    /// The external failure detector fired (falsely).
    FalseExternalSignal,
    /// Orphaned state reclaimed by the state-timeout backstop.
    ReclaimByTimeout,
    /// The removal message is retransmitted until acked.
    RetransmitRemoval,
}

impl Action {
    /// Short human-readable name.
    pub fn describe(&self) -> &'static str {
        match self {
            Self::InstallReceiverState => "install",
            Self::RestartStateTimeout => "restart-timeout",
            Self::AckTrigger => "ack-trigger",
            Self::AckRefresh => "ack-refresh",
            Self::AckRemoval => "ack-removal",
            Self::SendTrigger => "send-trigger",
            Self::ArmTriggerRetransmit => "arm-trigger-retrans",
            Self::TrackPendingRefresh => "track-pending-refresh",
            Self::SendRemoval => "send-removal",
            Self::ArmRemovalRetransmit => "arm-removal-retrans",
            Self::RepairByRefresh => "repair-by-refresh",
            Self::RepairByRetransmit => "repair-by-retrans",
            Self::NotifySender => "notify-sender",
            Self::DropReceiverState => "drop-state",
            Self::ExpireStateTimeout => "timeout-expired",
            Self::FalseExternalSignal => "false-signal",
            Self::ReclaimByTimeout => "reclaim-by-timeout",
            Self::RetransmitRemoval => "retransmit-removal",
        }
    }
}

/// Symbolic rate expression of a single-hop row.  [`SingleHopRate::eval`]
/// reproduces the exact arithmetic of the historical builder, so the
/// table-driven builder is bit-identical to the predicate-derived one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SingleHopRate {
    /// `(1-p_l)/Δ` — fast-path delivery.
    FastDelivery,
    /// `p_l/Δ` — fast-path loss.
    FastLoss,
    /// Table I row 3 — refresh and/or retransmission repair.
    SlowPathRepair,
    /// `λ_u` — sender update rate.
    Update,
    /// `λ_r` — sender removal rate.
    Removal,
    /// `λ_f` — Table I last row.
    FalseRemoval,
    /// Table I row 5 — removal delivery (or timeout without explicit
    /// removal).
    RemovalDelivery,
    /// Table I row 6 — orphan cleanup after a lost removal.
    OrphanCleanup,
}

impl SingleHopRate {
    /// Evaluates the expression for one spec and parameter set, delegating
    /// to the same rate helpers the builders have always used.
    pub fn eval(&self, spec: ProtocolSpec, p: &SingleHopParams) -> f64 {
        match self {
            Self::FastDelivery => (1.0 - p.loss) / p.delay,
            Self::FastLoss => p.loss / p.delay,
            Self::SlowPathRepair => slow_path_repair_rate(spec, p),
            Self::Update => p.update_rate,
            Self::Removal => p.removal_rate,
            Self::FalseRemoval => false_removal_rate(spec, p),
            Self::RemovalDelivery => removal_delivery_rate(spec, p),
            Self::OrphanCleanup => orphan_cleanup_rate(spec, p).unwrap_or(0.0),
        }
    }

    /// The paper's symbolic notation for the rate.
    pub fn describe(&self) -> &'static str {
        match self {
            Self::FastDelivery => "(1-p_l)/D",
            Self::FastLoss => "p_l/D",
            Self::SlowPathRepair => "repair(T,R)",
            Self::Update => "lambda_u",
            Self::Removal => "lambda_r",
            Self::FalseRemoval => "lambda_f",
            Self::RemovalDelivery => "removal(D,tau)",
            Self::OrphanCleanup => "cleanup(tau,R)",
        }
    }
}

/// Symbolic rate expression of a multi-hop row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiHopRate {
    /// `λ_u` — sender update rate.
    Update,
    /// `(1-p_l)/Δ` — next-hop delivery.
    FastDelivery,
    /// `p_l/Δ` — next-hop loss.
    FastLoss,
    /// Equations 9–11 — slow-path repair of hop `next_hop`.
    SlowRepair {
        /// 1-indexed hop being repaired.
        next_hop: usize,
    },
    /// Equation 9 — first timeout at hop `target + 1`.
    Cascade {
        /// Consistent hops remaining after the cascade.
        target: usize,
    },
    /// `K·λ_e` — a false signal at any of the `K` receivers.
    FalseSignal,
    /// `2/(K·Δ)` — sender learns of the false removal and re-installs.
    Recovery,
}

impl MultiHopRate {
    /// Evaluates the expression for one spec and parameter set.  For
    /// [`MultiHopRate::Cascade`] the builder memoizes per-target values
    /// instead of calling this in a loop (the `powf`-heavy term depends
    /// only on the target), but the value is identical.
    pub fn eval(&self, spec: ProtocolSpec, p: &MultiHopParams) -> f64 {
        match self {
            Self::Update => p.update_rate,
            Self::FastDelivery => (1.0 - p.loss) / p.delay,
            Self::FastLoss => p.loss / p.delay,
            Self::SlowRepair { next_hop } => slow_repair_rate(spec, p, *next_hop),
            Self::Cascade { target } => {
                timeout_cascade_rate_with_interval(p, multi_hop_attempt_interval(spec, p), *target)
            }
            Self::FalseSignal => p.false_signal_rate * p.hops as f64,
            Self::Recovery => 2.0 / (p.hops as f64 * p.delay),
        }
    }

    /// The paper's symbolic notation for the rate.
    pub fn describe(&self) -> String {
        match self {
            Self::Update => "lambda_u".to_string(),
            Self::FastDelivery => "(1-p_l)/D".to_string(),
            Self::FastLoss => "p_l/D".to_string(),
            Self::SlowRepair { next_hop } => format!("repair(hop {next_hop})"),
            Self::Cascade { target } => format!("cascade(->{target})"),
            Self::FalseSignal => "K*lambda_e".to_string(),
            Self::Recovery => "2/(K*D)".to_string(),
        }
    }
}

/// Walks the single-hop rows of one spec in the canonical order (the
/// historical builder's push order), invoking `sink` for each row whose
/// structural guard holds.  This is the single source of truth for the
/// single-hop transition structure: the numeric builder, the symbolic
/// table and the model checker all consume it.
pub fn each_single_hop_row(
    spec: ProtocolSpec,
    sink: &mut dyn FnMut(SingleHopState, SingleHopEvent, Guard, SingleHopState, SingleHopRate),
) {
    use SingleHopEvent::*;
    use SingleHopRate as R;
    use SingleHopState::*;
    let mut row = |from, event, guard: Guard, to, rate| {
        if guard.holds(&spec) {
            sink(from, event, guard, to, rate);
        }
    };

    // --- Setup and update propagation (rows 1–3 of Table I). ---
    row(
        Setup1,
        TriggerDelivered,
        Guard::Always,
        Consistent,
        R::FastDelivery,
    );
    row(Setup1, TriggerLost, Guard::Always, Setup2, R::FastLoss);
    row(
        Diff1,
        TriggerDelivered,
        Guard::Always,
        Consistent,
        R::FastDelivery,
    );
    row(Diff1, TriggerLost, Guard::Always, Diff2, R::FastLoss);
    row(
        Setup2,
        RepairDelivered,
        Guard::CanRepair,
        Consistent,
        R::SlowPathRepair,
    );
    row(
        Diff2,
        RepairDelivered,
        Guard::CanRepair,
        Consistent,
        R::SlowPathRepair,
    );

    // --- Sender-side updates (rate λ_u, Figure 3). ---
    row(Consistent, SenderUpdate, Guard::Always, Diff1, R::Update);
    row(Setup2, SenderUpdate, Guard::Always, Setup1, R::Update);
    row(Diff2, SenderUpdate, Guard::Always, Diff1, R::Update);

    // --- Sender-side removal (rate λ_r, Figure 3). ---
    row(Setup2, SenderRemoval, Guard::Always, Absorbed, R::Removal);
    row(
        Consistent,
        SenderRemoval,
        Guard::Always,
        Removing1,
        R::Removal,
    );
    row(Diff2, SenderRemoval, Guard::Always, Removing1, R::Removal);

    // --- False removal (rate λ_f, Figure 3 / Table I last row). ---
    row(
        Consistent,
        FalseRemoval,
        Guard::Always,
        Setup2,
        R::FalseRemoval,
    );
    row(Diff2, FalseRemoval, Guard::Always, Setup2, R::FalseRemoval);

    // --- Orphan removal at the receiver (rows 4–6 of Table I). ---
    let removal_event = if spec.uses_explicit_removal() {
        RemovalDelivered
    } else {
        ReceiverTimeout
    };
    row(
        Removing1,
        removal_event,
        Guard::Always,
        Absorbed,
        R::RemovalDelivery,
    );
    row(
        Removing1,
        RemovalLost,
        Guard::UsesExplicitRemoval,
        Removing2,
        R::FastLoss,
    );
    row(
        Removing2,
        OrphanCleanup,
        Guard::HasOrphanCleanup,
        Absorbed,
        R::OrphanCleanup,
    );
}

/// Walks the multi-hop rows of one spec over a `k`-hop chain in the
/// canonical order (the historical builder's push order).
pub fn each_multi_hop_row(
    spec: ProtocolSpec,
    k: usize,
    sink: &mut dyn FnMut(MultiHopState, MultiHopEvent, Guard, MultiHopState, MultiHopRate),
) {
    use MultiHopEvent::*;
    use MultiHopRate as R;
    let mut row = |from, event, guard: Guard, to, rate| {
        if guard.holds(&spec) {
            sink(from, event, guard, to, rate);
        }
    };

    let all_states = MultiHopState::enumerate(k, spec.has_external_detector());

    // --- State updates at the sender: every state returns to (0, Fast). ---
    for s in &all_states {
        if *s != MultiHopState::fast(0) {
            row(
                *s,
                SenderUpdate,
                Guard::Always,
                MultiHopState::fast(0),
                R::Update,
            );
        }
    }

    // --- Fast-path hop-by-hop propagation. ---
    for i in 0..k {
        row(
            MultiHopState::fast(i),
            TriggerDelivered,
            Guard::Always,
            MultiHopState::fast(i + 1),
            R::FastDelivery,
        );
        row(
            MultiHopState::fast(i),
            TriggerLost,
            Guard::Always,
            MultiHopState::slow(i),
            R::FastLoss,
        );
    }

    // --- Slow-path repair (refresh and/or retransmission). ---
    for i in 0..k {
        row(
            MultiHopState::slow(i),
            RepairDelivered,
            Guard::CanRepair,
            MultiHopState::fast(i + 1),
            R::SlowRepair { next_hop: i + 1 },
        );
    }

    // --- Soft-state timeout cascades (Equation 9). ---
    if spec.uses_state_timeout() {
        for s in &all_states {
            let i = s.consistent_hops();
            if i == 0 || matches!(s, MultiHopState::Recovery) {
                continue;
            }
            for j in 0..i {
                row(
                    *s,
                    TimeoutCascade,
                    Guard::UsesStateTimeout,
                    MultiHopState::slow(j),
                    R::Cascade { target: j },
                );
            }
        }
    }

    // --- Hard-state false external signals and recovery. ---
    if spec.has_external_detector() {
        for i in 0..k {
            row(
                MultiHopState::slow(i),
                FalseExternalSignal,
                Guard::HasExternalDetector,
                MultiHopState::Recovery,
                R::FalseSignal,
            );
        }
        row(
            MultiHopState::Recovery,
            SenderRecovers,
            Guard::HasExternalDetector,
            MultiHopState::fast(0),
            R::Recovery,
        );
    }
}

/// The mechanism actions a single-hop event performs under one spec.
fn single_hop_actions(spec: &ProtocolSpec, event: SingleHopEvent) -> Vec<Action> {
    use SingleHopEvent::*;
    let mut actions = Vec::new();
    match event {
        TriggerDelivered => {
            actions.push(Action::InstallReceiverState);
            if spec.uses_state_timeout() {
                actions.push(Action::RestartStateTimeout);
            }
            if spec.reliable_triggers() {
                actions.push(Action::AckTrigger);
            } else if spec.reliable_refresh() {
                actions.push(Action::AckRefresh);
            }
        }
        TriggerLost | RemovalLost => {}
        RepairDelivered => {
            actions.push(Action::InstallReceiverState);
            if spec.uses_refresh() {
                actions.push(Action::RepairByRefresh);
            }
            if spec.retransmits_repairs() {
                actions.push(Action::RepairByRetransmit);
            }
            if spec.uses_state_timeout() {
                actions.push(Action::RestartStateTimeout);
            }
            if spec.reliable_triggers() {
                actions.push(Action::AckTrigger);
            }
            if spec.reliable_refresh() {
                actions.push(Action::AckRefresh);
            }
        }
        SenderUpdate => {
            actions.push(Action::SendTrigger);
            if spec.reliable_triggers() {
                actions.push(Action::ArmTriggerRetransmit);
            } else if spec.reliable_refresh() {
                actions.push(Action::TrackPendingRefresh);
            }
        }
        SenderRemoval => {
            if spec.uses_explicit_removal() {
                actions.push(Action::SendRemoval);
            }
            if spec.reliable_removal() {
                actions.push(Action::ArmRemovalRetransmit);
            }
        }
        FalseRemoval => {
            if spec.uses_state_timeout() {
                actions.push(Action::ExpireStateTimeout);
            } else {
                actions.push(Action::FalseExternalSignal);
            }
            actions.push(Action::DropReceiverState);
            if spec.notifies_on_removal() {
                actions.push(Action::NotifySender);
            }
        }
        RemovalDelivered => {
            actions.push(Action::DropReceiverState);
            if spec.reliable_removal() {
                actions.push(Action::AckRemoval);
            }
        }
        ReceiverTimeout => {
            actions.push(Action::ExpireStateTimeout);
            actions.push(Action::DropReceiverState);
        }
        OrphanCleanup => {
            actions.push(Action::DropReceiverState);
            if spec.uses_state_timeout() {
                actions.push(Action::ReclaimByTimeout);
            }
            if spec.reliable_removal() {
                actions.push(Action::RetransmitRemoval);
            }
        }
    }
    actions
}

/// The mechanism actions a multi-hop event performs under one spec.
fn multi_hop_actions(spec: &ProtocolSpec, event: MultiHopEvent) -> Vec<Action> {
    use MultiHopEvent::*;
    let mut actions = Vec::new();
    match event {
        SenderUpdate | SenderRecovers => actions.push(Action::SendTrigger),
        TriggerDelivered => {
            actions.push(Action::InstallReceiverState);
            if spec.uses_state_timeout() {
                actions.push(Action::RestartStateTimeout);
            }
            if spec.reliable_triggers() {
                actions.push(Action::AckTrigger);
            }
        }
        TriggerLost => {}
        RepairDelivered => {
            actions.push(Action::InstallReceiverState);
            if spec.uses_refresh() {
                actions.push(Action::RepairByRefresh);
            }
            if spec.retransmits_repairs() {
                actions.push(Action::RepairByRetransmit);
            }
        }
        TimeoutCascade => {
            actions.push(Action::ExpireStateTimeout);
            actions.push(Action::DropReceiverState);
        }
        FalseExternalSignal => {
            actions.push(Action::FalseExternalSignal);
            actions.push(Action::DropReceiverState);
            if spec.notifies_on_removal() {
                actions.push(Action::NotifySender);
            }
        }
    }
    actions
}

/// One row of the declarative single-hop state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmRow {
    /// Source state.
    pub from: SingleHopState,
    /// The event that fires the transition.
    pub event: SingleHopEvent,
    /// The mechanism predicate that makes the row exist.
    pub guard: Guard,
    /// The mechanism actions the event performs under this spec.
    pub actions: Vec<Action>,
    /// Destination state.
    pub to: SingleHopState,
    /// Symbolic rate expression.
    pub rate: SingleHopRate,
}

/// The single-hop state machine of one spec, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionTable {
    /// The spec the table was generated from.
    pub spec: ProtocolSpec,
    /// All rows whose guard holds, in the canonical builder order.
    pub rows: Vec<FsmRow>,
}

impl TransitionTable {
    /// Generates the table for one spec.
    pub fn for_spec(spec: impl Into<ProtocolSpec>) -> Self {
        let spec = spec.into();
        let mut rows = Vec::new();
        each_single_hop_row(spec, &mut |from, event, guard, to, rate| {
            rows.push(FsmRow {
                from,
                event,
                guard,
                actions: single_hop_actions(&spec, event),
                to,
                rate,
            });
        });
        Self { spec, rows }
    }

    /// Evaluates every row at `p` and returns the positive-rate edges — the
    /// exact entry list the analytic builder produces.
    pub fn enabled_entries(&self, p: &SingleHopParams) -> Vec<RateEntry> {
        let mut entries = Vec::new();
        for row in &self.rows {
            let rate = row.rate.eval(self.spec, p);
            if rate > 0.0 {
                entries.push(RateEntry {
                    from: row.from,
                    to: row.to,
                    rate,
                });
            }
        }
        entries
    }

    /// The mechanism capability set the simulators dispatch on, derived
    /// from the table's actions alone.
    pub fn dispatch(&self) -> FsmDispatch {
        FsmDispatch::from_table(self)
    }

    /// Renders the table for `repro --list-transitions`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Protocol {} — single-hop state machine ({} rows)\n",
            self.spec,
            self.rows.len()
        ));
        out.push_str(&format!(
            "  {:<10} {:<18} {:<17} -> {:<10} {:<15} {}\n",
            "state", "event", "guard", "next", "rate", "actions"
        ));
        for row in &self.rows {
            let actions = row
                .actions
                .iter()
                .map(|a| a.describe())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  {:<10} {:<18} {:<17} -> {:<10} {:<15} [{}]\n",
                row.from.paper_notation(),
                row.event.describe(),
                row.guard.describe(),
                row.to.paper_notation(),
                row.rate.describe(),
                actions
            ));
        }
        out
    }
}

/// One row of the declarative multi-hop state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHopFsmRow {
    /// Source state.
    pub from: MultiHopState,
    /// The event that fires the transition.
    pub event: MultiHopEvent,
    /// The mechanism predicate that makes the row exist.
    pub guard: Guard,
    /// The mechanism actions the event performs under this spec.
    pub actions: Vec<Action>,
    /// Destination state.
    pub to: MultiHopState,
    /// Symbolic rate expression.
    pub rate: MultiHopRate,
}

/// The multi-hop state machine of one spec over a `hops`-hop chain.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHopTransitionTable {
    /// The spec the table was generated from.
    pub spec: ProtocolSpec,
    /// Number of hops `K`.
    pub hops: usize,
    /// All rows whose guard holds, in the canonical builder order.
    pub rows: Vec<MultiHopFsmRow>,
}

impl MultiHopTransitionTable {
    /// Generates the table for one spec and hop count.
    pub fn for_spec(spec: impl Into<ProtocolSpec>, hops: usize) -> Self {
        let spec = spec.into();
        let mut rows = Vec::new();
        each_multi_hop_row(spec, hops, &mut |from, event, guard, to, rate| {
            rows.push(MultiHopFsmRow {
                from,
                event,
                guard,
                actions: multi_hop_actions(&spec, event),
                to,
                rate,
            });
        });
        Self { spec, hops, rows }
    }

    /// Evaluates every row at `p` and returns the positive-rate edges — the
    /// exact entry list the analytic builder produces.  `p.hops` must match
    /// the table's hop count.
    pub fn enabled_entries(&self, p: &MultiHopParams) -> Vec<MultiHopRateEntry> {
        // Memoize the powf-heavy cascade term per target, like the builder.
        let cascade: Vec<f64> = if self.spec.uses_state_timeout() {
            let attempt_interval = multi_hop_attempt_interval(self.spec, p);
            (0..self.hops)
                .map(|j| timeout_cascade_rate_with_interval(p, attempt_interval, j))
                .collect()
        } else {
            Vec::new()
        };
        let mut entries = Vec::new();
        for row in &self.rows {
            let rate = match row.rate {
                MultiHopRate::Cascade { target } => cascade[target],
                other => other.eval(self.spec, p),
            };
            if rate > 0.0 && row.from != row.to {
                entries.push(MultiHopRateEntry {
                    from: row.from,
                    to: row.to,
                    rate,
                });
            }
        }
        entries
    }

    /// Renders the table for `repro --list-transitions`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Protocol {} — multi-hop state machine, K = {} ({} rows)\n",
            self.spec,
            self.hops,
            self.rows.len()
        ));
        out.push_str(&format!(
            "  {:<8} {:<22} {:<17} -> {:<8} {:<16} {}\n",
            "state", "event", "guard", "next", "rate", "actions"
        ));
        for row in &self.rows {
            let actions = row
                .actions
                .iter()
                .map(|a| a.describe())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  {:<8} {:<22} {:<17} -> {:<8} {:<16} [{}]\n",
                row.from.to_string(),
                row.event.describe(),
                row.guard.describe(),
                row.to.to_string(),
                row.rate.describe(),
                actions
            ));
        }
        out
    }
}

/// The mechanism capability set the simulators branch on.  Historically
/// each simulator called the spec predicates at every dispatch site; now
/// both compute an `FsmDispatch` from the generated [`TransitionTable`] at
/// construction and branch on its fields — so the table is the single
/// runtime source of mechanism truth, and the model checker can verify
/// table-derived dispatch against predicate-derived dispatch
/// ([`FsmDispatch::from_predicates`]) for every coherent spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FsmDispatch {
    /// The protocol sends periodic refreshes.
    pub uses_refresh: bool,
    /// Refreshes are acked and retransmitted.
    pub reliable_refresh: bool,
    /// The receiver runs a state-timeout timer.
    pub uses_state_timeout: bool,
    /// Removal is detected by an external failure detector.
    pub has_external_detector: bool,
    /// The protocol sends explicit removal messages.
    pub uses_explicit_removal: bool,
    /// Triggers are acked and retransmitted hop-by-hop.
    pub reliable_triggers: bool,
    /// Removals are acked and retransmitted.
    pub reliable_removal: bool,
    /// The receiver notifies the sender when it removes state.
    pub notifies_on_removal: bool,
    /// Some retransmission mechanism repairs the slow path.
    pub retransmits_repairs: bool,
}

impl FsmDispatch {
    /// Derives the capability set from a generated table's actions alone
    /// (no spec predicates consulted).
    pub fn from_table(table: &TransitionTable) -> Self {
        let has = |action: Action| table.rows.iter().any(|row| row.actions.contains(&action));
        Self {
            uses_refresh: has(Action::RepairByRefresh),
            reliable_refresh: has(Action::AckRefresh),
            uses_state_timeout: has(Action::RestartStateTimeout),
            has_external_detector: has(Action::FalseExternalSignal),
            uses_explicit_removal: has(Action::SendRemoval),
            reliable_triggers: has(Action::AckTrigger),
            reliable_removal: has(Action::ArmRemovalRetransmit),
            notifies_on_removal: has(Action::NotifySender),
            retransmits_repairs: has(Action::RepairByRetransmit),
        }
    }

    /// Generates the table for `spec` and derives the capability set from
    /// it — the constructor the simulators use.
    pub fn for_spec(spec: impl Into<ProtocolSpec>) -> Self {
        Self::from_table(&TransitionTable::for_spec(spec))
    }

    /// The historical derivation straight from the spec predicates — kept
    /// as the reference the model checker's agreement property compares
    /// [`FsmDispatch::from_table`] against.
    pub fn from_predicates(spec: impl Into<ProtocolSpec>) -> Self {
        let spec = spec.into();
        Self {
            uses_refresh: spec.uses_refresh(),
            reliable_refresh: spec.reliable_refresh(),
            uses_state_timeout: spec.uses_state_timeout(),
            has_external_detector: spec.has_external_detector(),
            uses_explicit_removal: spec.uses_explicit_removal(),
            reliable_triggers: spec.reliable_triggers(),
            reliable_removal: spec.reliable_removal(),
            notifies_on_removal: spec.notifies_on_removal(),
            retransmits_repairs: spec.retransmits_repairs(),
        }
    }
}

impl fmt::Display for FsmDispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", mechanism_code_from_dispatch(self))
    }
}

/// The five-character mechanism code `<refresh><timeout><triggers><removal><notify>`
/// used by the `spec-spectrum` experiment's `spec:<code>` labels:
///
/// * refresh: `-` none, `b` best-effort, `r` reliable;
/// * timeout: `-` none, `t` state timeout;
/// * triggers: `b` best-effort, `r` reliable;
/// * removal: `-` none, `b` best-effort, `r` reliable;
/// * notify: `-` silent, `n` notifies on removal.
///
/// `btb--` is pure soft state (SS), `--rrn` pure hard state (HS).
pub fn mechanism_code(spec: &ProtocolSpec) -> String {
    mechanism_code_from_dispatch(&FsmDispatch::from_predicates(*spec))
}

fn mechanism_code_from_dispatch(d: &FsmDispatch) -> String {
    let refresh = if !d.uses_refresh {
        '-'
    } else if d.reliable_refresh {
        'r'
    } else {
        'b'
    };
    let timeout = if d.uses_state_timeout { 't' } else { '-' };
    let triggers = if d.reliable_triggers { 'r' } else { 'b' };
    let removal = if !d.uses_explicit_removal {
        '-'
    } else if d.reliable_removal {
        'r'
    } else {
        'b'
    };
    let notify = if d.notifies_on_removal { 'n' } else { '-' };
    format!("{refresh}{timeout}{triggers}{removal}{notify}")
}

/// Renders the mechanism matrix of `docs/protocols.md` from the generated
/// tables' dispatch sets: one column per spec, one row per mechanism.
/// Keeping the doc in sync is a test, not a convention.
pub fn mechanism_matrix(specs: &[ProtocolSpec]) -> String {
    // Matrix row: paper mechanism name, `ProtocolSpec` field, cell renderer.
    type MatrixRow = (&'static str, &'static str, fn(&FsmDispatch) -> String);
    let dispatches: Vec<FsmDispatch> = specs.iter().map(|s| FsmDispatch::for_spec(*s)).collect();
    let mut out = String::new();
    let mut header = String::from("| Mechanism (paper) | Field |");
    let mut rule = String::from("|---|---|");
    for spec in specs {
        header.push_str(&format!(" {spec} |"));
        rule.push_str("---|");
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    let rows: [MatrixRow; 5] = [
        ("refresh", "`refresh`", |d| {
            if !d.uses_refresh {
                "—".into()
            } else if d.reliable_refresh {
                "reliable".into()
            } else {
                "best-effort".into()
            }
        }),
        ("state timeout", "`state_timeout`", |d| {
            if d.uses_state_timeout {
                "yes".into()
            } else {
                "—".into()
            }
        }),
        ("reliable trigger", "`triggers`", |d| {
            if d.reliable_triggers {
                "reliable".into()
            } else {
                "best-effort".into()
            }
        }),
        ("explicit removal", "`removal`", |d| {
            if !d.uses_explicit_removal {
                "—".into()
            } else if d.reliable_removal {
                "reliable".into()
            } else {
                "best-effort".into()
            }
        }),
        ("removal notification", "`notify_on_removal`", |d| {
            if d.notifies_on_removal {
                "yes".into()
            } else {
                "—".into()
            }
        }),
    ];
    for (paper_name, field, cell) in rows {
        let mut line = format!("| {paper_name} | {field} |");
        for d in &dispatches {
            line.push_str(&format!(" {} |", cell(d)));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_hop::transitions::{multi_hop_transitions, multi_hop_transitions_reference};
    use crate::params::Protocol;
    use crate::single_hop::transitions::{protocol_transitions, protocol_transitions_reference};

    fn coherent_specs() -> Vec<ProtocolSpec> {
        ProtocolSpec::enumerate_all("spec")
            .into_iter()
            .filter(|s| s.validate().is_ok())
            .collect()
    }

    #[test]
    fn thirty_three_coherent_specs() {
        assert_eq!(coherent_specs().len(), 33);
    }

    #[test]
    fn table_enabled_entries_match_builder_and_reference_for_all_coherent_specs() {
        let p = SingleHopParams::kazaa_defaults();
        for spec in coherent_specs() {
            let table = TransitionTable::for_spec(spec);
            let enabled = table.enabled_entries(&p);
            let built = protocol_transitions(spec, &p);
            let reference = protocol_transitions_reference(spec, &p);
            assert_eq!(enabled, built.entries, "{spec}: table vs builder");
            assert_eq!(enabled, reference.entries, "{spec}: table vs reference");
        }
    }

    #[test]
    fn multi_hop_table_matches_builder_and_reference_for_all_coherent_specs() {
        let p = MultiHopParams::reservation_defaults().with_hops(6);
        for spec in coherent_specs() {
            let table = MultiHopTransitionTable::for_spec(spec, p.hops);
            let enabled = table.enabled_entries(&p);
            let built = multi_hop_transitions(spec, &p);
            let reference = multi_hop_transitions_reference(spec, &p);
            assert_eq!(enabled, built, "{spec}: table vs builder");
            assert_eq!(enabled, reference, "{spec}: table vs reference");
        }
    }

    #[test]
    fn dispatch_from_table_equals_dispatch_from_predicates() {
        for spec in coherent_specs() {
            assert_eq!(
                FsmDispatch::for_spec(spec),
                FsmDispatch::from_predicates(spec),
                "{spec}"
            );
        }
    }

    #[test]
    fn preset_mechanism_codes() {
        assert_eq!(mechanism_code(&ProtocolSpec::SS), "btb--");
        assert_eq!(mechanism_code(&ProtocolSpec::HS), "--rrn");
        assert_eq!(mechanism_code(&ProtocolSpec::SS_ER), "btbb-");
        assert_eq!(mechanism_code(&ProtocolSpec::SS_RT), "btr-n");
        assert_eq!(mechanism_code(&ProtocolSpec::SS_RTR), "btrrn");
    }

    #[test]
    fn guards_match_rate_structure() {
        // A guard that fails must imply the corresponding rate helper
        // evaluates to nothing, and vice versa — otherwise the structural
        // filter and the numeric filter would disagree.
        let p = SingleHopParams::kazaa_defaults();
        for spec in coherent_specs() {
            assert_eq!(
                Guard::CanRepair.holds(&spec),
                slow_path_repair_rate(spec, &p) > 0.0,
                "{spec}"
            );
            assert_eq!(
                Guard::HasOrphanCleanup.holds(&spec),
                orphan_cleanup_rate(spec, &p).is_some(),
                "{spec}"
            );
        }
    }

    #[test]
    fn render_mentions_states_events_and_actions() {
        let table = TransitionTable::for_spec(Protocol::SsRtr);
        let text = table.render();
        assert!(text.contains("SS+RTR"));
        assert!(text.contains("trigger delivered"));
        assert!(text.contains("ack-trigger"));
        assert!(text.contains("(0,0)"));
        let multi = MultiHopTransitionTable::for_spec(Protocol::Hs, 4);
        let text = multi.render();
        assert!(text.contains("K = 4"));
        assert!(text.contains("false-signal"));
    }

    #[test]
    fn mechanism_matrix_covers_paper_presets() {
        let matrix = mechanism_matrix(&ProtocolSpec::PAPER);
        assert!(matrix.contains("| SS |"));
        assert!(matrix.contains("| HS |"));
        assert!(matrix.contains("best-effort"));
        assert!(matrix.contains("`state_timeout`"));
        // One header + one rule + five mechanism rows.
        assert_eq!(matrix.lines().count(), 7);
    }
}
