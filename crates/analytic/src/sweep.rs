//! The analytic sweep fast path: rebuild-in-place CTMC solving.
//!
//! Every analytic figure is a sweep — hundreds of `(ProtocolSpec, params)`
//! points, each a stationary solve plus (single-hop) a mean-time-to-
//! absorption solve.  The one-shot [`SingleHopModel`]/[`MultiHopModel`] path
//! rebuilds everything per point: two `CtmcBuilder`s with their `HashMap`s,
//! a `Ctmc` rate matrix, a generator clone, a transpose, a submatrix and a
//! fresh Gaussian elimination working copy.  For the tiny chains of this
//! paper (8–42 states) those allocations dominate the flops.
//!
//! A [`SingleHopSweepSession`] / [`MultiHopSweepSession`] holds the rate
//! matrix, the dense solve workspace (including the [`ctmc::LuSolver`]'s
//! pivot and factor buffers) and the state↔index maps across points, and
//! re-solves each new point by *mutating rate entries in place* — same state
//! order, same accumulation order, same factorization arithmetic — so the
//! solutions are **bit-identical** to the rebuild-per-point path (tested
//! exhaustively below and pinned end-to-end by the fig11a golden).
//!
//! ```
//! use siganalytic::{Protocol, SingleHopModel, SingleHopParams};
//! use siganalytic::sweep::SingleHopSweepSession;
//!
//! let mut session = SingleHopSweepSession::new();
//! let params = SingleHopParams::kazaa_defaults();
//! let fast = session.solve(Protocol::Ss, params).unwrap();
//! let slow = SingleHopModel::new(Protocol::Ss, params).unwrap().solve().unwrap();
//! assert_eq!(fast, slow); // not "close" — equal
//! ```

use crate::multi_hop::model::solution_from_stationary;
use crate::multi_hop::states::MultiHopState;
use crate::multi_hop::transitions::{multi_hop_transitions_into, MultiHopRateEntry};
use crate::multi_hop::MultiHopSolution;
use crate::params::{MultiHopParams, SingleHopParams};
use crate::single_hop::model::{assemble_solution, ModelError};
use crate::single_hop::states::SingleHopState;
use crate::single_hop::transitions::{protocol_transitions_into, RateTable};
use crate::single_hop::SingleHopSolution;
use crate::spec::ProtocolSpec;
use ctmc::{CtmcError, DMatrix, LuSolver};
use std::collections::HashMap;

/// Reusable dense workspace for solving one CTMC's stationary distribution
/// or mean time to absorption without per-point allocation.
///
/// The arithmetic replicates `ctmc::Ctmc` operation for operation (rate
/// accumulation order, row-sum order, generator/transpose/submatrix values,
/// LU pivoting), which is what makes session solutions bit-identical to the
/// builder path.
#[derive(Debug, Clone)]
struct ChainWorkspace {
    n: usize,
    /// Off-diagonal accumulated rates (diagonal kept at zero), row-major.
    rates: DMatrix,
    /// Per-state exit rates (row sums of `rates`).
    exit: Vec<f64>,
    /// Dense solve matrix for the stationary system.
    a: DMatrix,
    /// Dense solve matrix for the transient (absorption) subsystem.
    sub: DMatrix,
    /// Right-hand side / solution vector.
    rhs: Vec<f64>,
    /// Transient state indices for absorption solves.
    transient: Vec<usize>,
    solver: LuSolver,
}

impl ChainWorkspace {
    fn new() -> Self {
        Self {
            n: 0,
            rates: DMatrix::zeros(0, 0),
            exit: Vec::new(),
            a: DMatrix::zeros(0, 0),
            sub: DMatrix::zeros(0, 0),
            rhs: Vec::new(),
            transient: Vec::new(),
            solver: LuSolver::new(),
        }
    }

    /// Starts a new point: zeroes the rate matrix, resizing only when the
    /// state count changed since the previous point.
    fn begin(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.rates = DMatrix::zeros(n, n);
            self.a = DMatrix::zeros(n, n);
        } else {
            self.rates.as_mut_slice().fill(0.0);
        }
        self.exit.clear();
        self.exit.resize(n, 0.0);
    }

    /// Accumulates a `from → to` rate (mirrors `Ctmc::add_rate` for the
    /// pre-validated entries the transition builders emit).
    fn add_rate(&mut self, from: usize, to: usize, rate: f64) {
        let cur = self.rates.row(from)[to];
        self.rates.row_mut(from)[to] = cur + rate;
    }

    /// Row sums of the rate matrix into `exit`, in index order (the same
    /// summation `Ctmc::generator` performs).
    fn compute_exit_rates(&mut self) {
        for (i, e) in self.exit.iter_mut().enumerate() {
            *e = self.rates.row(i).iter().sum();
        }
    }

    /// Stationary distribution of the (recurrent) chain, left in `rhs`.
    ///
    /// Value-for-value the same computation as
    /// `Ctmc::stationary_distribution`: solve `Qᵀ·π = 0` with the
    /// normalization `Σπ = 1` replacing the last equation, clamp tiny
    /// negatives, renormalize.
    fn stationary(&mut self) -> Result<&[f64], CtmcError> {
        let n = self.n;
        if n == 0 {
            return Err(CtmcError::BadStructure("empty chain"));
        }
        if n == 1 {
            self.rhs.clear();
            self.rhs.push(1.0);
            return Ok(&self.rhs);
        }
        self.compute_exit_rates();
        if self.exit.contains(&0.0) {
            return Err(CtmcError::BadStructure(
                "chain has an absorbing state; merge it before asking for a stationary distribution",
            ));
        }
        // a[r][c] = Qᵀ[r][c] = (r == c ? −exit[r] : rates[c][r]), last row 1.
        let rdata = self.rates.as_slice();
        for r in 0..n {
            let dst = self.a.row_mut(r);
            if r == n - 1 {
                dst.fill(1.0);
            } else {
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = if c == r {
                        -self.exit[r]
                    } else {
                        rdata[c * n + r]
                    };
                }
            }
        }
        self.rhs.clear();
        self.rhs.resize(n, 0.0);
        self.rhs[n - 1] = 1.0;
        self.solver.refactor(&self.a)?;
        self.solver.solve_in_place(&mut self.rhs)?;
        // Numerical cleanup: clamp tiny negatives and renormalize.
        for p in self.rhs.iter_mut() {
            if *p < 0.0 && *p > -1e-9 {
                *p = 0.0;
            }
        }
        if self.rhs.iter().any(|p| *p < 0.0) {
            return Err(CtmcError::SingularSystem);
        }
        let sum: f64 = self.rhs.iter().sum();
        if sum <= 0.0 {
            return Err(CtmcError::SingularSystem);
        }
        for p in self.rhs.iter_mut() {
            *p /= sum;
        }
        Ok(&self.rhs)
    }

    /// Expected time to reach `absorbing` from `start` — the same `Q_TT·t =
    /// −1` solve as `Ctmc::mean_time_to_absorption`, restricted to the one
    /// entry the caller needs.
    fn mtta_from(&mut self, absorbing: usize, start: usize) -> Result<f64, CtmcError> {
        if start == absorbing {
            return Ok(0.0);
        }
        let n = self.n;
        self.compute_exit_rates();
        self.transient.clear();
        self.transient.extend((0..n).filter(|&i| i != absorbing));
        let m = self.transient.len();
        if m == 0 {
            return Ok(0.0);
        }
        if self.sub.rows() != m {
            self.sub = DMatrix::zeros(m, m);
        }
        let rdata = self.rates.as_slice();
        for (ri, &r) in self.transient.iter().enumerate() {
            let dst = self.sub.row_mut(ri);
            for (d, &c) in dst.iter_mut().zip(self.transient.iter()) {
                *d = if r == c {
                    -self.exit[r]
                } else {
                    rdata[r * n + c]
                };
            }
        }
        self.rhs.clear();
        self.rhs.resize(m, -1.0);
        self.solver.refactor(&self.sub)?;
        self.solver.solve_in_place(&mut self.rhs)?;
        let pos = self
            .transient
            .iter()
            .position(|&i| i == start)
            // sigtidy: allow(no-unwrap) — the caller passes a start index taken from `transient`
            .expect("start state is transient");
        Ok(self.rhs[pos])
    }
}

/// Canonical index of a single-hop state (its position in
/// [`SingleHopState::ALL`]).
fn state_slot(s: SingleHopState) -> usize {
    s.canonical_index()
}

const NO_STATE: usize = usize::MAX;

/// A reusable single-hop solver: [`SingleHopSweepSession::solve`] produces
/// exactly the `SingleHopSolution` that
/// `SingleHopModel::new(protocol, params)?.solve()` would, while keeping the
/// matrices, LU workspace and state maps alive across points.
///
/// Create one per thread and feed it a whole sweep ([`solve_sweep`]
/// [`SingleHopSweepSession::solve_sweep`]); the structures are rebuilt only
/// when the protocol's chain shape actually changes (different used-state
/// set), which protocol-major sweep orders make rare.
#[derive(Debug, Clone)]
pub struct SingleHopSweepSession {
    merged: ChainWorkspace,
    life: ChainWorkspace,
    merged_states: Vec<SingleHopState>,
    life_states: Vec<SingleHopState>,
    merged_index: [usize; 8],
    life_index: [usize; 8],
    /// Reused transition-table buffer (refilled per point).
    table: RateTable,
}

impl Default for SingleHopSweepSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleHopSweepSession {
    /// A fresh session (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            merged: ChainWorkspace::new(),
            life: ChainWorkspace::new(),
            merged_states: Vec::with_capacity(8),
            life_states: Vec::with_capacity(8),
            merged_index: [NO_STATE; 8],
            life_index: [NO_STATE; 8],
            table: RateTable {
                protocol: ProtocolSpec::SS,
                entries: Vec::with_capacity(16),
            },
        }
    }

    /// Solves one `(protocol, params)` point, reusing the session's
    /// workspace.  Bit-identical to
    /// `SingleHopModel::new(protocol, params)?.solve()`.
    pub fn solve(
        &mut self,
        protocol: impl Into<ProtocolSpec>,
        params: SingleHopParams,
    ) -> Result<SingleHopSolution, ModelError> {
        let protocol = protocol.into();
        protocol.validate().map_err(ModelError::InvalidSpec)?;
        params.validate().map_err(ModelError::InvalidParams)?;
        protocol_transitions_into(protocol, &params, &mut self.table);

        // Which states this protocol's chain actually uses (same rule as
        // `SingleHopModel::state_is_used`).
        let mut used = [false; 8];
        used[state_slot(SingleHopState::Setup1)] = true;
        for e in &self.table.entries {
            used[state_slot(e.from)] = true;
            used[state_slot(e.to)] = true;
        }

        // --- Merged recurrent chain: Absorbed identified with Setup1. ---
        self.merged_states.clear();
        self.merged_index = [NO_STATE; 8];
        for s in SingleHopState::ALL {
            if s == SingleHopState::Absorbed {
                continue;
            }
            if used[state_slot(s)] {
                self.merged_index[state_slot(s)] = self.merged_states.len();
                self.merged_states.push(s);
            }
        }
        self.merged.begin(self.merged_states.len());
        for e in &self.table.entries {
            let to = if e.to == SingleHopState::Absorbed {
                SingleHopState::Setup1
            } else {
                e.to
            };
            let fi = self.merged_index[state_slot(e.from)];
            let ti = self.merged_index[state_slot(to)];
            // Mirror `CtmcBuilder::transition`'s no-ops.
            if e.rate == 0.0 || fi == ti {
                continue;
            }
            self.merged.add_rate(fi, ti, e.rate);
        }
        let pi = self.merged.stationary().map_err(ModelError::Chain)?;
        let mut stationary = HashMap::with_capacity(self.merged_states.len());
        for (idx, s) in self.merged_states.iter().enumerate() {
            stationary.insert(*s, pi[idx]);
        }

        // --- Transient chain for the expected receiver-side lifetime. ---
        self.life_states.clear();
        self.life_index = [NO_STATE; 8];
        for s in SingleHopState::ALL {
            if used[state_slot(s)] || s == SingleHopState::Absorbed {
                self.life_index[state_slot(s)] = self.life_states.len();
                self.life_states.push(s);
            }
        }
        self.life.begin(self.life_states.len());
        for e in &self.table.entries {
            let fi = self.life_index[state_slot(e.from)];
            let ti = self.life_index[state_slot(e.to)];
            if e.rate == 0.0 || fi == ti {
                continue;
            }
            self.life.add_rate(fi, ti, e.rate);
        }
        let absorbed_idx = self.life_index[state_slot(SingleHopState::Absorbed)];
        let start_idx = self.life_index[state_slot(SingleHopState::Setup1)];
        let lifetime = self
            .life
            .mtta_from(absorbed_idx, start_idx)
            .map_err(ModelError::Chain)?;

        Ok(assemble_solution(
            protocol,
            params,
            &self.table,
            stationary,
            lifetime,
        ))
    }

    /// Solves a batch of points in order — the sweep entry point.
    pub fn solve_sweep(
        &mut self,
        jobs: &[(ProtocolSpec, SingleHopParams)],
    ) -> Result<Vec<SingleHopSolution>, ModelError> {
        jobs.iter()
            .map(|&(protocol, params)| self.solve(protocol, params))
            .collect()
    }
}

/// Index of a multi-hop state in the `MultiHopState::enumerate(k, _)` order:
/// fast states first (`0 ..= k`), then slow states (`k+1 ..= 2k`), then the
/// recovery state (`2k + 1`).
fn multi_hop_index(k: usize, s: MultiHopState) -> usize {
    match s {
        MultiHopState::Progress {
            consistent,
            mode: crate::multi_hop::states::PathMode::Fast,
        } => consistent,
        MultiHopState::Progress {
            consistent,
            mode: crate::multi_hop::states::PathMode::Slow,
        } => k + 1 + consistent,
        MultiHopState::Recovery => 2 * k + 1,
    }
}

/// A reusable multi-hop solver: [`MultiHopSweepSession::solve`] produces
/// exactly the `MultiHopSolution` that
/// `MultiHopModel::new(protocol, params)?.solve()` would, reusing matrices,
/// LU workspace and the state list across points (rebuilt only when the hop
/// count or the recovery-state presence changes).
#[derive(Debug, Clone)]
pub struct MultiHopSweepSession {
    ws: ChainWorkspace,
    states: Vec<MultiHopState>,
    /// Reused transition-entry buffer (refilled per point).
    entries: Vec<MultiHopRateEntry>,
    k: usize,
    with_recovery: bool,
}

impl Default for MultiHopSweepSession {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiHopSweepSession {
    /// A fresh session (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            ws: ChainWorkspace::new(),
            states: Vec::new(),
            entries: Vec::new(),
            k: 0,
            with_recovery: false,
        }
    }

    /// Solves one `(protocol, params)` point, reusing the session's
    /// workspace.  Bit-identical to
    /// `MultiHopModel::new(protocol, params)?.solve()`.
    pub fn solve(
        &mut self,
        protocol: impl Into<ProtocolSpec>,
        params: MultiHopParams,
    ) -> Result<MultiHopSolution, ModelError> {
        let protocol = protocol.into();
        protocol.validate().map_err(ModelError::InvalidSpec)?;
        params.validate().map_err(ModelError::InvalidParams)?;

        let k = params.hops;
        let with_recovery = protocol.has_external_detector();
        if self.states.is_empty() || self.k != k || self.with_recovery != with_recovery {
            self.states = MultiHopState::enumerate(k, with_recovery);
            self.k = k;
            self.with_recovery = with_recovery;
        }
        self.ws.begin(self.states.len());
        multi_hop_transitions_into(protocol, &params, &mut self.entries);
        for e in &self.entries {
            let fi = multi_hop_index(k, e.from);
            let ti = multi_hop_index(k, e.to);
            if e.rate == 0.0 || fi == ti {
                continue;
            }
            self.ws.add_rate(fi, ti, e.rate);
        }
        let pi = self.ws.stationary().map_err(ModelError::Chain)?;
        Ok(solution_from_stationary(protocol, params, &self.states, pi))
    }

    /// Solves a batch of points in order — the sweep entry point.
    pub fn solve_sweep(
        &mut self,
        jobs: &[(ProtocolSpec, MultiHopParams)],
    ) -> Result<Vec<MultiHopSolution>, ModelError> {
        jobs.iter()
            .map(|&(protocol, params)| self.solve(protocol, params))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Protocol;
    use crate::spec::RefreshMode;
    use crate::{MultiHopModel, SingleHopModel};

    #[test]
    fn single_hop_session_is_bit_identical_to_the_model_path() {
        // Every paper preset, a sweep of lifetimes, plus parameter corners
        // that change the chain *structure* (loss = 0 drops the slow-path
        // states) — all interleaved through ONE session, so the
        // rebuild-on-structure-change path is exercised repeatedly.
        let mut session = SingleHopSweepSession::new();
        let base = SingleHopParams::kazaa_defaults();
        for protocol in Protocol::ALL {
            for lifetime in [30.0, 600.0, 10_000.0] {
                let params = base.with_mean_lifetime(lifetime);
                let fast = session.solve(protocol, params).unwrap();
                let slow = SingleHopModel::new(protocol, params)
                    .unwrap()
                    .solve()
                    .unwrap();
                assert_eq!(fast, slow, "{protocol} at lifetime {lifetime}");
            }
            let mut lossless = base;
            lossless.loss = 0.0;
            let fast = session.solve(protocol, lossless).unwrap();
            let slow = SingleHopModel::new(protocol, lossless)
                .unwrap()
                .solve()
                .unwrap();
            assert_eq!(fast, slow, "{protocol} lossless (structure change)");
        }
    }

    #[test]
    fn single_hop_session_covers_non_paper_specs() {
        let ss_rr = ProtocolSpec::soft_state("SS+RR").with_refresh(Some(RefreshMode::Reliable));
        let mut session = SingleHopSweepSession::new();
        for spec in ProtocolSpec::enumerate_all("x") {
            if spec.validate().is_err() {
                continue;
            }
            let params = SingleHopParams::kazaa_defaults().with_mean_lifetime(120.0);
            let fast = session.solve(spec, params).unwrap();
            let slow = SingleHopModel::new(spec, params).unwrap().solve().unwrap();
            assert_eq!(fast, slow, "{spec:?}");
        }
        // And the named custom spec used elsewhere in the workspace.
        let params = SingleHopParams::kazaa_defaults();
        assert_eq!(
            session.solve(ss_rr, params).unwrap(),
            SingleHopModel::new(ss_rr, params).unwrap().solve().unwrap()
        );
    }

    #[test]
    fn single_hop_solve_sweep_matches_per_point_solves() {
        let jobs: Vec<(ProtocolSpec, SingleHopParams)> = Protocol::ALL
            .iter()
            .flat_map(|p| {
                [1.0f64, 5.0, 20.0].into_iter().map(|t| {
                    (
                        p.spec(),
                        SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(t),
                    )
                })
            })
            .collect();
        let mut session = SingleHopSweepSession::new();
        let batch = session.solve_sweep(&jobs).unwrap();
        assert_eq!(batch.len(), jobs.len());
        for ((protocol, params), got) in jobs.iter().zip(&batch) {
            let want = SingleHopModel::new(*protocol, *params)
                .unwrap()
                .solve()
                .unwrap();
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn single_hop_session_rejects_what_the_model_rejects() {
        let mut session = SingleHopSweepSession::new();
        let mut bad = SingleHopParams::kazaa_defaults();
        bad.loss = 2.0;
        assert!(matches!(
            session.solve(Protocol::Ss, bad),
            Err(ModelError::InvalidParams(_))
        ));
        let incoherent = ProtocolSpec::hard_state("bad").with_state_timeout(true);
        assert!(matches!(
            session.solve(incoherent, SingleHopParams::kazaa_defaults()),
            Err(ModelError::InvalidSpec(_))
        ));
        // The session still works after a rejection.
        session
            .solve(Protocol::Ss, SingleHopParams::kazaa_defaults())
            .unwrap();
    }

    #[test]
    fn multi_hop_session_is_bit_identical_to_the_model_path() {
        let mut session = MultiHopSweepSession::new();
        let base = MultiHopParams::reservation_defaults();
        // Interleave protocols (recovery state appears and disappears) and
        // hop counts (matrix shape changes) through one session.
        for hops in [2usize, 7, 20] {
            for protocol in Protocol::MULTI_HOP {
                let params = base.with_hops(hops);
                let fast = session.solve(protocol, params).unwrap();
                let slow = MultiHopModel::new(protocol, params)
                    .unwrap()
                    .solve()
                    .unwrap();
                assert_eq!(fast, slow, "{protocol} at {hops} hops");
            }
        }
        // Refresh-timer sweep at fixed shape (the pure mutate-in-place path).
        for t in [1.0f64, 5.0, 50.0] {
            let params = base.with_refresh_timer_scaled_timeout(t);
            for protocol in Protocol::MULTI_HOP {
                let fast = session.solve(protocol, params).unwrap();
                let slow = MultiHopModel::new(protocol, params)
                    .unwrap()
                    .solve()
                    .unwrap();
                assert_eq!(fast, slow, "{protocol} at T = {t}");
            }
        }
    }

    #[test]
    fn multi_hop_solve_sweep_matches_per_point_solves() {
        let jobs: Vec<(ProtocolSpec, MultiHopParams)> = Protocol::MULTI_HOP
            .iter()
            .flat_map(|p| {
                (2..=4).map(|k| {
                    (
                        p.spec(),
                        MultiHopParams::reservation_defaults().with_hops(k),
                    )
                })
            })
            .collect();
        let mut session = MultiHopSweepSession::new();
        let batch = session.solve_sweep(&jobs).unwrap();
        for ((protocol, params), got) in jobs.iter().zip(&batch) {
            let want = MultiHopModel::new(*protocol, *params)
                .unwrap()
                .solve()
                .unwrap();
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn session_reuse_does_not_leak_state_between_protocols() {
        // Alternating between chains of different sizes must not carry any
        // stale rate over — run the same point before and after an unrelated
        // solve and compare.
        let mut session = SingleHopSweepSession::new();
        let params = SingleHopParams::kazaa_defaults();
        let first = session.solve(Protocol::SsRtr, params).unwrap();
        session.solve(Protocol::Ss, params).unwrap();
        session
            .solve(Protocol::Hs, params.with_mean_lifetime(31.0))
            .unwrap();
        let again = session.solve(Protocol::SsRtr, params).unwrap();
        assert_eq!(first, again);
    }
}
