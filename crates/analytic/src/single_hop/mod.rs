//! The single-hop analytic model (Section III-A, Figure 3, Table I).
//!
//! A signaling sender installs, updates and eventually removes one piece of
//! state at a single remote receiver.  The life cycle is captured by an
//! eight-state continuous-time Markov chain; protocol differences show up
//! only as different transition rates (or disabled transitions).
//!
//! The module is split into:
//!
//! * [`states`] — the Markov states of Figure 3;
//! * [`transitions`] — the protocol-specific transition rates of Table I and
//!   the common transitions described in the surrounding text;
//! * [`model`] — assembling and solving the chain: the inconsistency ratio
//!   (Equation 1), the expected receiver-side lifetime, the message rates
//!   (Equations 3–7) and the normalized message rate (Equation 2);
//! * [`metrics`] — the per-message-type rate breakdown shared with reports.

pub mod metrics;
pub mod model;
pub mod states;
pub mod transitions;

pub use metrics::MessageRates;
pub use model::{solve_all, ModelError, SingleHopModel, SingleHopSolution};
pub use states::SingleHopState;
pub use transitions::{protocol_transitions, protocol_transitions_into, RateTable};
