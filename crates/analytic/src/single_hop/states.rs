//! Markov states of the single-hop model (paper Figure 3).

use std::fmt;

/// A state of the single-hop signaling Markov chain.
///
/// Each state is a pair "(sender has state, receiver has state)" refined by a
/// subscript that distinguishes whether the most recent explicit message is
/// still in flight (*fast path*, subscript 1) or has been lost so the system
/// is waiting for a refresh/retransmission/timeout (*slow path*, subscript 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SingleHopState {
    /// `(1,0)₁` — state installed at the sender only; the trigger message is
    /// in flight.  This is the initial state of every session.
    Setup1,
    /// `(1,0)₂` — state installed at the sender only; the trigger was lost
    /// (or the receiver falsely removed its state) and the system waits for a
    /// refresh / retransmission.
    Setup2,
    /// `C` — sender and receiver hold the same state value (consistent).
    Consistent,
    /// `IC₁` — both hold state but the values differ; the update trigger is
    /// in flight.
    Diff1,
    /// `IC₂` — both hold state but the values differ; the update trigger was
    /// lost.
    Diff2,
    /// `(0,1)₁` — the sender removed its state, the receiver still holds it;
    /// for protocols with explicit removal the removal message is in flight.
    Removing1,
    /// `(0,1)₂` — the sender removed its state and the explicit removal
    /// message was lost.  This state exists only for SS+ER, SS+RTR and HS.
    Removing2,
    /// `(0,0)` — the state is gone from both ends (absorbing).
    Absorbed,
}

impl SingleHopState {
    /// All states in a stable order (the order used for reporting).
    pub const ALL: [SingleHopState; 8] = [
        SingleHopState::Setup1,
        SingleHopState::Setup2,
        SingleHopState::Consistent,
        SingleHopState::Diff1,
        SingleHopState::Diff2,
        SingleHopState::Removing1,
        SingleHopState::Removing2,
        SingleHopState::Absorbed,
    ];

    /// Position of the state in [`SingleHopState::ALL`] — a dense index for
    /// array-backed state maps (the sweep fast path uses it to avoid hashing
    /// in per-point hot loops).
    pub fn canonical_index(self) -> usize {
        match self {
            SingleHopState::Setup1 => 0,
            SingleHopState::Setup2 => 1,
            SingleHopState::Consistent => 2,
            SingleHopState::Diff1 => 3,
            SingleHopState::Diff2 => 4,
            SingleHopState::Removing1 => 5,
            SingleHopState::Removing2 => 6,
            SingleHopState::Absorbed => 7,
        }
    }

    /// Whether the sender and receiver state values agree in this state.
    ///
    /// Only [`SingleHopState::Consistent`] and the final
    /// [`SingleHopState::Absorbed`] state (neither side holds state) are
    /// consistent; every other state counts toward the inconsistency ratio,
    /// exactly as in Equation (1).
    pub fn is_consistent(self) -> bool {
        matches!(self, SingleHopState::Consistent | SingleHopState::Absorbed)
    }

    /// Whether this is the absorbing end-of-life state.
    pub fn is_absorbing(self) -> bool {
        matches!(self, SingleHopState::Absorbed)
    }

    /// The paper's notation for the state.
    pub fn paper_notation(self) -> &'static str {
        match self {
            SingleHopState::Setup1 => "(1,0)_1",
            SingleHopState::Setup2 => "(1,0)_2",
            SingleHopState::Consistent => "C",
            SingleHopState::Diff1 => "IC_1",
            SingleHopState::Diff2 => "IC_2",
            SingleHopState::Removing1 => "(0,1)_1",
            SingleHopState::Removing2 => "(0,1)_2",
            SingleHopState::Absorbed => "(0,0)",
        }
    }
}

impl fmt::Display for SingleHopState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn eight_distinct_states() {
        let set: HashSet<_> = SingleHopState::ALL.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn consistency_classification() {
        let consistent: Vec<_> = SingleHopState::ALL
            .iter()
            .filter(|s| s.is_consistent())
            .collect();
        assert_eq!(
            consistent,
            vec![&SingleHopState::Consistent, &SingleHopState::Absorbed]
        );
    }

    #[test]
    fn only_one_absorbing_state() {
        let absorbing: Vec<_> = SingleHopState::ALL
            .iter()
            .filter(|s| s.is_absorbing())
            .collect();
        assert_eq!(absorbing, vec![&SingleHopState::Absorbed]);
    }

    #[test]
    fn notation_matches_paper() {
        assert_eq!(SingleHopState::Setup1.to_string(), "(1,0)_1");
        assert_eq!(SingleHopState::Consistent.to_string(), "C");
        assert_eq!(SingleHopState::Diff2.to_string(), "IC_2");
        assert_eq!(SingleHopState::Absorbed.to_string(), "(0,0)");
    }
}
