//! Per-message-type signaling rate breakdown (paper Equations 3–7).

/// Mean signaling message rates (messages per second of receiver-side state
/// lifetime), broken down by message class.
///
/// The components mirror Equations (3)–(7) of the paper:
///
/// * [`MessageRates::trigger`] — explicit trigger (setup/update) messages
///   (`m_ET`, Eq. 3);
/// * [`MessageRates::explicit_removal`] — explicit removal messages
///   (`m_ER`, Eq. 4);
/// * [`MessageRates::refresh`] — periodic soft-state refresh messages
///   (`m_R`, Eq. 5);
/// * [`MessageRates::reliable_trigger_extra`] — the *extra* messages that
///   reliable triggers cost: retransmissions, acknowledgments and the
///   removal notification sent after a false removal (`m_RT`, Eq. 6);
/// * [`MessageRates::reliable_removal_extra`] — the extra messages that
///   reliable removal costs: removal retransmissions and removal
///   acknowledgments (`m_RR`, Eq. 7).
///
/// Components that do not apply to a protocol are zero, so the protocol's
/// overall mean message rate is simply the sum of all five components — which
/// reproduces the per-protocol sums listed at the end of Section III-A.2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MessageRates {
    /// Explicit trigger (state setup / update) messages, `m_ET`.
    pub trigger: f64,
    /// Periodic refresh messages, `m_R`.
    pub refresh: f64,
    /// Explicit removal messages, `m_ER`.
    pub explicit_removal: f64,
    /// Extra messages due to reliable triggers (retransmissions, ACKs,
    /// false-removal notifications), `m_RT`.
    pub reliable_trigger_extra: f64,
    /// Extra messages due to reliable removal (removal retransmissions and
    /// ACKs), `m_RR`.
    pub reliable_removal_extra: f64,
    /// Extra messages due to reliable refreshes (refresh ACKs and
    /// retransmissions).  Zero for every paper protocol; non-zero only for
    /// mechanism compositions with `RefreshMode::Reliable`.
    pub reliable_refresh_extra: f64,
}

impl MessageRates {
    /// The protocol's overall mean signaling message rate `m` (messages per
    /// second while the receiver-side state exists).
    pub fn total(&self) -> f64 {
        self.trigger
            + self.refresh
            + self.explicit_removal
            + self.reliable_trigger_extra
            + self.reliable_removal_extra
            + self.reliable_refresh_extra
    }

    /// Fraction of the total rate spent on refresh messages — the knob the
    /// refresh-timer sweeps (Figures 6, 7, 9) trade against consistency.
    pub fn refresh_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.refresh / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_components() {
        let r = MessageRates {
            trigger: 0.1,
            refresh: 0.2,
            explicit_removal: 0.05,
            reliable_trigger_extra: 0.03,
            reliable_removal_extra: 0.02,
            reliable_refresh_extra: 0.01,
        };
        assert!((r.total() - 0.41).abs() < 1e-12);
    }

    #[test]
    fn default_is_all_zero() {
        let r = MessageRates::default();
        assert_eq!(r.total(), 0.0);
        assert_eq!(r.refresh_fraction(), 0.0);
    }

    #[test]
    fn refresh_fraction() {
        let r = MessageRates {
            trigger: 0.1,
            refresh: 0.3,
            ..Default::default()
        };
        assert!((r.refresh_fraction() - 0.75).abs() < 1e-12);
    }
}
