//! Solving the single-hop chain and extracting the paper's metrics.

use super::metrics::MessageRates;
use super::states::SingleHopState;
use super::transitions::{protocol_transitions, RateTable};
use crate::params::{ConfigError, Protocol, SingleHopParams};
use crate::spec::{ProtocolSpec, SpecError};
use ctmc::{CtmcBuilder, CtmcError};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while building or solving an analytic model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The parameter set failed validation.
    InvalidParams(ConfigError),
    /// The protocol's mechanism composition is incoherent.
    InvalidSpec(SpecError),
    /// The underlying Markov-chain machinery failed (singular system, ...).
    Chain(CtmcError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            ModelError::InvalidSpec(e) => write!(f, "invalid protocol spec: {e}"),
            ModelError::Chain(e) => write!(f, "chain error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<CtmcError> for ModelError {
    fn from(e: CtmcError) -> Self {
        ModelError::Chain(e)
    }
}

/// The solved single-hop model of one protocol under one parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleHopSolution {
    /// The protocol.
    pub protocol: ProtocolSpec,
    /// The parameters the model was solved under.
    pub params: SingleHopParams,
    /// Inconsistency ratio `I` (Equation 1): fraction of time the sender and
    /// receiver state values differ, over the receiver-side state lifetime.
    pub inconsistency: f64,
    /// Expected receiver-side state lifetime `L` (mean time from session
    /// start until state is removed from both ends).
    pub expected_lifetime: f64,
    /// Per-message-type mean rates (Equations 3–7).
    pub message_rates: MessageRates,
    /// Overall mean message rate `m = Σ` components (messages/second).
    pub message_rate: f64,
    /// Normalized average signaling message rate `M = Λ·λ_r = L·m·λ_r`
    /// (Equation 2) — messages per second of *sender* lifetime, the
    /// normalization that makes protocols with different receiver-side
    /// lifetimes comparable.
    pub normalized_message_rate: f64,
    /// Stationary probabilities of the merged recurrent chain, keyed by
    /// state.
    pub stationary: HashMap<SingleHopState, f64>,
}

impl SingleHopSolution {
    /// Stationary probability of one state (0 for states the protocol's chain
    /// does not contain).
    pub fn stationary_probability(&self, state: SingleHopState) -> f64 {
        self.stationary.get(&state).copied().unwrap_or(0.0)
    }

    /// Integrated cost `C = w·I + M` (Equation 8).
    pub fn integrated_cost(&self, inconsistency_weight: f64) -> f64 {
        inconsistency_weight * self.inconsistency + self.normalized_message_rate
    }
}

/// The single-hop analytic model: one protocol spec + one parameter set.
#[derive(Debug, Clone)]
pub struct SingleHopModel {
    protocol: ProtocolSpec,
    params: SingleHopParams,
    table: RateTable,
}

impl SingleHopModel {
    /// Builds the model, validating the parameters and the protocol's
    /// mechanism composition.  Accepts a [`Protocol`] name or any
    /// [`ProtocolSpec`].
    pub fn new(
        protocol: impl Into<ProtocolSpec>,
        params: SingleHopParams,
    ) -> Result<Self, ModelError> {
        let protocol = protocol.into();
        protocol.validate().map_err(ModelError::InvalidSpec)?;
        params.validate().map_err(ModelError::InvalidParams)?;
        let table = protocol_transitions(protocol, &params);
        Ok(Self {
            protocol,
            params,
            table,
        })
    }

    /// The protocol being modelled.
    pub fn protocol(&self) -> ProtocolSpec {
        self.protocol
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> &SingleHopParams {
        &self.params
    }

    /// The protocol-specific transition table (Table I instantiation).
    pub fn rate_table(&self) -> &RateTable {
        &self.table
    }

    /// Solves the chain and computes every metric.
    pub fn solve(&self) -> Result<SingleHopSolution, ModelError> {
        let pi = self.stationary_merged()?;
        let lifetime = self.expected_lifetime()?;
        Ok(assemble_solution(
            self.protocol,
            self.params,
            &self.table,
            pi,
            lifetime,
        ))
    }

    /// Stationary distribution of the *merged* recurrent chain, in which the
    /// absorbing `(0,0)` state is identified with the initial `(1,0)₁` state
    /// (the paper's construction for Equation 1: when one session ends, the
    /// next begins).
    fn stationary_merged(&self) -> Result<HashMap<SingleHopState, f64>, ModelError> {
        let mut builder: CtmcBuilder<SingleHopState> = CtmcBuilder::new();
        // Keep a deterministic state order: insert in canonical order first,
        // restricted to states the protocol actually uses.
        for s in SingleHopState::ALL {
            if s == SingleHopState::Absorbed {
                continue;
            }
            if self.state_is_used(s) {
                builder.state(s);
            }
        }
        for e in &self.table.entries {
            let to = if e.to == SingleHopState::Absorbed {
                SingleHopState::Setup1
            } else {
                e.to
            };
            builder.transition(e.from, to, e.rate)?;
        }
        let chain = builder.build()?;
        let pi = chain.stationary_distribution()?;
        let mut map = HashMap::new();
        for (idx, label) in builder.labels().iter().enumerate() {
            map.insert(*label, pi[idx]);
        }
        Ok(map)
    }

    /// Expected receiver-side state lifetime `L`: the mean time to absorption
    /// from `(1,0)₁` in the transient (non-merged) chain.
    pub fn expected_lifetime(&self) -> Result<f64, ModelError> {
        let mut builder: CtmcBuilder<SingleHopState> = CtmcBuilder::new();
        for s in SingleHopState::ALL {
            if self.state_is_used(s) || s == SingleHopState::Absorbed {
                builder.state(s);
            }
        }
        for e in &self.table.entries {
            builder.transition(e.from, e.to, e.rate)?;
        }
        let chain = builder.build()?;
        let absorbed_idx = builder
            .index_of(&SingleHopState::Absorbed)
            // sigtidy: allow(no-unwrap) — every state was registered on this builder above
            .expect("absorbed state present");
        let start_idx = builder
            .index_of(&SingleHopState::Setup1)
            // sigtidy: allow(no-unwrap) — every state was registered on this builder above
            .expect("setup state present");
        let times = chain.mean_time_to_absorption(&[absorbed_idx])?;
        Ok(times[start_idx])
    }

    fn state_is_used(&self, s: SingleHopState) -> bool {
        if s == SingleHopState::Setup1 {
            return true;
        }
        self.table.entries.iter().any(|e| e.from == s || e.to == s)
    }
}

/// Assembles every solution metric from a solved merged-chain distribution
/// and the expected lifetime.  Shared verbatim by [`SingleHopModel::solve`]
/// and the sweep fast path ([`crate::sweep::SingleHopSweepSession`]), which
/// is what makes the two paths produce identical `SingleHopSolution`s.
pub(crate) fn assemble_solution(
    protocol: ProtocolSpec,
    params: SingleHopParams,
    table: &RateTable,
    stationary: HashMap<SingleHopState, f64>,
    lifetime: f64,
) -> SingleHopSolution {
    // One dense probability array up front (missing states are 0, exactly
    // like the historical per-lookup `unwrap_or(0.0)`), so the metric
    // formulas below do no hashing.
    let mut probs = [0.0f64; 8];
    for (slot, s) in SingleHopState::ALL.iter().enumerate() {
        probs[slot] = stationary.get(s).copied().unwrap_or(0.0);
    }
    let inconsistency = inconsistency_from(&probs);
    let message_rates = message_rates_from(protocol, &params, table, &probs);
    let message_rate = message_rates.total();
    let normalized = lifetime * message_rate * params.removal_rate;
    SingleHopSolution {
        protocol,
        params,
        inconsistency,
        expected_lifetime: lifetime,
        message_rates,
        message_rate,
        normalized_message_rate: normalized,
        stationary,
    }
}

/// Inconsistency ratio `I` (Equation 1) from the merged chain's stationary
/// distribution (as a dense by-[`canonical_index`] array).
///
/// [`canonical_index`]: SingleHopState::canonical_index
pub(crate) fn inconsistency_from(pi: &[f64; 8]) -> f64 {
    1.0 - pi[SingleHopState::Consistent.canonical_index()]
}

/// Message-rate components (Equations 3–7), evaluated on the merged
/// chain's stationary distribution.
///
/// Interpretation of the OCR-damaged terms (documented in DESIGN.md):
///
/// * the acknowledgment part of `m_RT` counts one ACK per successfully
///   delivered trigger — fast-path deliveries at rate `(1−p_l)/Δ` from
///   `(1,0)₁`/`IC₁` and retransmission deliveries at rate `(1−p_l)/R`
///   from `(1,0)₂`/`IC₂`;
/// * the notification part of `m_RT` is `λ_f·(π_C + π_IC₂)` — the
///   receiver tells the sender whenever it (falsely) removes state;
/// * `m_RR` counts removal retransmissions at rate `1/R` from `(0,1)₂`
///   plus one ACK per completed removal.
pub(crate) fn message_rates_from(
    protocol: ProtocolSpec,
    p: &SingleHopParams,
    table: &RateTable,
    pi: &[f64; 8],
) -> MessageRates {
    use SingleHopState::*;
    let get = |s: SingleHopState| pi[s.canonical_index()];
    let success = 1.0 - p.loss;

    // Eq. (3): every sojourn in a fast-path state emits one trigger.
    let trigger = (get(Setup1) + get(Diff1)) / p.delay;

    // Eq. (5): refreshes are emitted while the sender holds state and no
    // trigger is in flight.
    let refresh = if protocol.uses_refresh() {
        (get(Setup2) + get(Consistent) + get(Diff2)) / p.refresh_timer
    } else {
        0.0
    };

    // Eq. (4): explicit removal messages.
    let explicit_removal = if protocol.uses_explicit_removal() {
        get(Removing1) * (table.rate(Removing1, Absorbed) + table.rate(Removing1, Removing2))
    } else {
        0.0
    };

    // Eq. (6): reliable-trigger extra traffic.  This component also
    // carries the false-removal notification stream (Eq. 6's last
    // term), which any notifying spec emits — with or without reliable
    // triggers (every notifying paper preset happens to have both).
    let reliable_trigger_extra = if protocol.reliable_triggers() {
        let retransmissions = (get(Setup2) + get(Diff2)) / p.retrans_timer;
        let acks = success / p.delay * (get(Setup1) + get(Diff1))
            + success / p.retrans_timer * (get(Setup2) + get(Diff2));
        let false_removal_rate = super::transitions::false_removal_rate(protocol, p);
        let notifications = if protocol.notifies_on_removal() {
            false_removal_rate * (get(Consistent) + get(Diff2))
        } else {
            0.0
        };
        retransmissions + acks + notifications
    } else if protocol.notifies_on_removal() {
        let false_removal_rate = super::transitions::false_removal_rate(protocol, p);
        false_removal_rate * (get(Consistent) + get(Diff2))
    } else {
        0.0
    };

    // Eq. (7): reliable-removal extra traffic.
    let reliable_removal_extra = if protocol.reliable_removal() {
        get(Removing2) / p.retrans_timer
            + get(Removing1) * table.rate(Removing1, Absorbed)
            + get(Removing2) * table.rate(Removing2, Absorbed)
    } else {
        0.0
    };

    // Reliable-refresh extra traffic (no paper preset uses this — it is
    // the mechanism-composition extension): one ACK per delivered
    // refresh, and — when triggers have no ACK machinery of their own,
    // so the refresh loop carries them — one ACK per delivered trigger
    // plus retransmissions while the receiver lags.  (With reliable
    // triggers those last two streams are already billed by Eq. 6.)
    let reliable_refresh_extra = if protocol.reliable_refresh() {
        let refresh_acks = success / p.refresh_timer * (get(Setup2) + get(Consistent) + get(Diff2));
        if protocol.reliable_triggers() {
            refresh_acks
        } else {
            let trigger_acks = success / p.delay * (get(Setup1) + get(Diff1));
            let retransmissions = (get(Setup2) + get(Diff2)) / p.retrans_timer;
            // Delivered retransmissions are acknowledged too (the same
            // `success/R` ACK stream Eq. 6 bills for reliable triggers).
            let retrans_acks = success / p.retrans_timer * (get(Setup2) + get(Diff2));
            refresh_acks + trigger_acks + retransmissions + retrans_acks
        }
    } else {
        0.0
    };

    MessageRates {
        trigger,
        refresh,
        explicit_removal,
        reliable_trigger_extra,
        reliable_removal_extra,
        reliable_refresh_extra,
    }
}

/// Solves all five protocols under the same parameter set.
pub fn solve_all(params: SingleHopParams) -> Result<Vec<SingleHopSolution>, ModelError> {
    Protocol::ALL
        .iter()
        .map(|p| SingleHopModel::new(*p, params)?.solve())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(protocol: Protocol) -> SingleHopSolution {
        SingleHopModel::new(protocol, SingleHopParams::kazaa_defaults())
            .unwrap()
            .solve()
            .unwrap()
    }

    fn solve_with(protocol: Protocol, params: SingleHopParams) -> SingleHopSolution {
        SingleHopModel::new(protocol, params)
            .unwrap()
            .solve()
            .unwrap()
    }

    #[test]
    fn stationary_probabilities_sum_to_one() {
        for proto in Protocol::ALL {
            let s = solve(proto);
            let sum: f64 = s.stationary.values().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{proto}: sum = {sum}");
            assert!(s.stationary.values().all(|p| *p >= -1e-12));
        }
    }

    #[test]
    fn inconsistency_is_a_probability() {
        for proto in Protocol::ALL {
            let s = solve(proto);
            assert!(
                (0.0..=1.0).contains(&s.inconsistency),
                "{proto}: I = {}",
                s.inconsistency
            );
        }
    }

    #[test]
    fn default_ordering_matches_paper_figure_four() {
        // At the Kazaa defaults (session ≈ 1800 s) the paper finds
        // SS worst, SS+ER a large improvement, SS+RTR ≈ HS best.
        let ss = solve(Protocol::Ss).inconsistency;
        let ss_er = solve(Protocol::SsEr).inconsistency;
        let ss_rt = solve(Protocol::SsRt).inconsistency;
        let ss_rtr = solve(Protocol::SsRtr).inconsistency;
        let hs = solve(Protocol::Hs).inconsistency;
        assert!(ss_er < ss, "SS+ER ({ss_er}) should beat SS ({ss})");
        assert!(ss_rt < ss, "SS+RT ({ss_rt}) should beat SS ({ss})");
        assert!(
            ss_rtr < ss_er,
            "SS+RTR ({ss_rtr}) should beat SS+ER ({ss_er})"
        );
        assert!(hs < ss_er, "HS ({hs}) should beat SS+ER ({ss_er})");
        // SS+RTR and HS are within a small factor of each other.
        assert!(
            ss_rtr < hs * 3.0 && hs < ss_rtr * 3.0,
            "SS+RTR {ss_rtr} vs HS {hs}"
        );
    }

    #[test]
    fn explicit_removal_adds_negligible_overhead_for_long_sessions() {
        // The paper's headline: SS+ER greatly improves consistency over SS at
        // almost no extra signaling cost for sessions of ~1000s of seconds.
        let ss = solve(Protocol::Ss);
        let ss_er = solve(Protocol::SsEr);
        assert!(ss_er.inconsistency < 0.5 * ss.inconsistency);
        let overhead = (ss_er.normalized_message_rate - ss.normalized_message_rate)
            / ss.normalized_message_rate;
        assert!(overhead < 0.02, "relative extra overhead = {overhead}");
    }

    #[test]
    fn hard_state_has_lowest_message_rate() {
        let rates: Vec<(Protocol, f64)> = Protocol::ALL
            .iter()
            .map(|p| (*p, solve(*p).normalized_message_rate))
            .collect();
        let hs = rates.iter().find(|(p, _)| *p == Protocol::Hs).unwrap().1;
        for (p, r) in &rates {
            if *p != Protocol::Hs {
                assert!(hs < *r, "HS ({hs}) should be below {p} ({r})");
            }
        }
    }

    #[test]
    fn refresh_dominates_soft_state_message_rate() {
        let s = solve(Protocol::Ss);
        assert!(s.message_rates.refresh_fraction() > 0.8);
        let hs = solve(Protocol::Hs);
        assert_eq!(hs.message_rates.refresh, 0.0);
    }

    #[test]
    fn expected_lifetime_exceeds_sender_lifetime_for_soft_state() {
        // Receiver keeps orphaned state for about one timeout after the
        // sender departs under SS, and only ~Δ longer under the explicit
        // removal protocols.
        let params = SingleHopParams::kazaa_defaults();
        let ss = solve(Protocol::Ss);
        let ss_er = solve(Protocol::SsEr);
        let sender = params.mean_lifetime();
        assert!(ss.expected_lifetime > sender + 0.5 * params.timeout_timer);
        assert!(ss_er.expected_lifetime < sender + params.timeout_timer);
        assert!(ss_er.expected_lifetime > sender);
    }

    #[test]
    fn shorter_sessions_mean_more_inconsistency_and_overhead() {
        // Figure 4: both metrics decrease as the session length grows.
        for proto in Protocol::ALL {
            let short = solve_with(
                proto,
                SingleHopParams::kazaa_defaults().with_mean_lifetime(30.0),
            );
            let long = solve_with(
                proto,
                SingleHopParams::kazaa_defaults().with_mean_lifetime(10_000.0),
            );
            assert!(
                short.inconsistency > long.inconsistency,
                "{proto}: {} !> {}",
                short.inconsistency,
                long.inconsistency
            );
            assert!(
                short.normalized_message_rate > long.normalized_message_rate,
                "{proto}"
            );
        }
    }

    #[test]
    fn short_sessions_group_by_removal_mechanism() {
        // Figure 4(a), left side: for short sessions the protocols group by
        // how state removal is performed, with SS and SS+RT (timeout removal)
        // far worse than the explicit-removal protocols.
        let params = SingleHopParams::kazaa_defaults().with_mean_lifetime(30.0);
        let ss = solve_with(Protocol::Ss, params).inconsistency;
        let ss_rt = solve_with(Protocol::SsRt, params).inconsistency;
        let ss_er = solve_with(Protocol::SsEr, params).inconsistency;
        let hs = solve_with(Protocol::Hs, params).inconsistency;
        assert!(ss > 5.0 * ss_er);
        assert!(ss_rt > 5.0 * ss_er);
        assert!(
            (ss - ss_rt).abs() < 0.2 * ss,
            "SS ≈ SS+RT for short sessions"
        );
        assert!(ss_er > hs);
    }

    #[test]
    fn higher_loss_means_more_inconsistency() {
        for proto in Protocol::ALL {
            let mut lossier = SingleHopParams::kazaa_defaults();
            lossier.loss = 0.25;
            let low = solve(proto).inconsistency;
            let high = solve_with(proto, lossier).inconsistency;
            assert!(high > low, "{proto}: {high} !> {low}");
        }
    }

    #[test]
    fn reliable_triggers_matter_more_under_loss() {
        // Figure 5(a): under heavy loss, SS+RT clearly beats SS.
        let mut lossy = SingleHopParams::kazaa_defaults();
        lossy.loss = 0.2;
        let ss = solve_with(Protocol::Ss, lossy).inconsistency;
        let ss_rt = solve_with(Protocol::SsRt, lossy).inconsistency;
        assert!(ss_rt < ss);
    }

    #[test]
    fn longer_delay_means_more_inconsistency() {
        for proto in Protocol::ALL {
            let near = solve_with(
                proto,
                SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(0.01),
            );
            let far = solve_with(
                proto,
                SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(0.8),
            );
            assert!(far.inconsistency > near.inconsistency, "{proto}");
        }
    }

    #[test]
    fn timeout_shorter_than_refresh_collapses_soft_state() {
        // Figure 8(a): τ < T means refreshes arrive too late and state
        // flaps; soft-state protocols perform poorly.
        let mut bad = SingleHopParams::kazaa_defaults();
        bad.timeout_timer = 1.0; // refresh stays at 5 s
        let good = SingleHopParams::kazaa_defaults();
        for proto in [
            Protocol::Ss,
            Protocol::SsEr,
            Protocol::SsRt,
            Protocol::SsRtr,
        ] {
            let collapsed = solve_with(proto, bad).inconsistency;
            let healthy = solve_with(proto, good).inconsistency;
            // SS+RT both repairs false removals quickly (small penalty) and
            // loses the long orphan-timeout wait (a benefit), so its
            // degradation factor is smaller than for the other variants.
            let factor = if proto == Protocol::SsRt { 2.0 } else { 5.0 };
            assert!(
                collapsed > factor * healthy,
                "{proto}: {collapsed} vs {healthy}"
            );
        }
        // HS has no timeout and is unaffected.
        let hs_bad = solve_with(Protocol::Hs, bad).inconsistency;
        let hs_good = solve_with(Protocol::Hs, good).inconsistency;
        assert!((hs_bad - hs_good).abs() < 1e-9);
    }

    #[test]
    fn smaller_refresh_timer_costs_more_messages() {
        // Figure 6(b): the soft-state message rate scales like 1/T.
        let fast = solve_with(
            Protocol::Ss,
            SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(1.0),
        );
        let slow = solve_with(
            Protocol::Ss,
            SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(20.0),
        );
        assert!(fast.normalized_message_rate > 5.0 * slow.normalized_message_rate);
        // HS ignores the refresh timer entirely.
        let hs_fast = solve_with(
            Protocol::Hs,
            SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(1.0),
        );
        let hs_slow = solve_with(
            Protocol::Hs,
            SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(20.0),
        );
        assert!((hs_fast.normalized_message_rate - hs_slow.normalized_message_rate).abs() < 1e-9);
        assert!((hs_fast.inconsistency - hs_slow.inconsistency).abs() < 1e-9);
    }

    #[test]
    fn message_rate_components_match_protocol_mechanisms() {
        let ss = solve(Protocol::Ss).message_rates;
        assert_eq!(ss.explicit_removal, 0.0);
        assert_eq!(ss.reliable_trigger_extra, 0.0);
        assert_eq!(ss.reliable_removal_extra, 0.0);
        assert!(ss.refresh > 0.0 && ss.trigger > 0.0);

        let er = solve(Protocol::SsEr).message_rates;
        assert!(er.explicit_removal > 0.0);
        assert_eq!(er.reliable_trigger_extra, 0.0);

        let rt = solve(Protocol::SsRt).message_rates;
        assert!(rt.reliable_trigger_extra > 0.0);
        assert_eq!(rt.explicit_removal, 0.0);
        assert_eq!(rt.reliable_removal_extra, 0.0);

        let rtr = solve(Protocol::SsRtr).message_rates;
        assert!(rtr.explicit_removal > 0.0);
        assert!(rtr.reliable_trigger_extra > 0.0);
        assert!(rtr.reliable_removal_extra > 0.0);

        let hs = solve(Protocol::Hs).message_rates;
        assert_eq!(hs.refresh, 0.0);
        assert!(hs.trigger > 0.0);
        assert!(hs.reliable_trigger_extra > 0.0);
        assert!(hs.reliable_removal_extra > 0.0);
    }

    #[test]
    fn normalized_rate_is_lifetime_times_rate_times_removal_rate() {
        let s = solve(Protocol::SsEr);
        let expected = s.expected_lifetime * s.message_rate * s.params.removal_rate;
        assert!((s.normalized_message_rate - expected).abs() < 1e-12);
    }

    #[test]
    fn integrated_cost_combines_both_metrics() {
        let s = solve(Protocol::Ss);
        let c = s.integrated_cost(10.0);
        assert!((c - (10.0 * s.inconsistency + s.normalized_message_rate)).abs() < 1e-12);
        assert!(s.integrated_cost(0.0) < c);
    }

    #[test]
    fn solve_all_returns_five_solutions() {
        let all = solve_all(SingleHopParams::kazaa_defaults()).unwrap();
        assert_eq!(all.len(), 5);
        let labels: Vec<&str> = all.iter().map(|s| s.protocol.label()).collect();
        assert_eq!(labels, vec!["SS", "SS+ER", "SS+RT", "SS+RTR", "HS"]);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut bad = SingleHopParams::kazaa_defaults();
        bad.loss = 2.0;
        assert!(matches!(
            SingleHopModel::new(Protocol::Ss, bad),
            Err(ModelError::InvalidParams(_))
        ));
    }

    #[test]
    fn zero_loss_drives_inconsistency_to_propagation_only() {
        // With a loss-free channel the only inconsistency left is the Δ it
        // takes setup/update/removal messages to propagate.
        let mut p = SingleHopParams::kazaa_defaults();
        p.loss = 0.0;
        for proto in Protocol::ALL {
            let s = solve_with(proto, p);
            assert!(
                s.inconsistency < 0.01,
                "{proto}: I = {} should be tiny at zero loss",
                s.inconsistency
            );
        }
    }

    #[test]
    fn stationary_probability_of_missing_state_is_zero() {
        let s = solve(Protocol::Ss);
        assert_eq!(s.stationary_probability(SingleHopState::Removing2), 0.0);
        assert!(s.stationary_probability(SingleHopState::Consistent) > 0.9);
    }
}
