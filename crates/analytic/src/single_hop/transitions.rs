//! Protocol-specific transition rates (paper Table I plus the common
//! transitions described in Section III-A.1).
//!
//! Parameter notation (matching the paper):
//!
//! * `λ_u` — state update rate at the sender,
//! * `λ_r` — state removal rate (`1/λ_r` = mean session length),
//! * `λ_f` — false removal rate; for soft-state protocols
//!   `λ_f = p_l^(τ/T)/τ` (all refreshes within one timeout interval lost),
//!   for HS it is the external detector's false-signal rate `λ_e`,
//! * `p_l` — channel loss probability,
//! * `Δ` — mean one-way channel delay,
//! * `T` — refresh timer, `τ` — state-timeout timer, `R` — retransmission
//!   timer.
//!
//! Table I entries reproduced here (rates from/to the states of Figure 3):
//!
//! | transition                | SS          | SS+ER       | SS+RT                | SS+RTR               | HS          |
//! |---------------------------|-------------|-------------|----------------------|----------------------|-------------|
//! | `(1,0)₁→(1,0)₂`, `IC₁→IC₂`| `p_l/Δ`     | `p_l/Δ`     | `p_l/Δ`              | `p_l/Δ`              | `p_l/Δ`     |
//! | `(1,0)₁→C`, `IC₁→C`       | `(1-p_l)/Δ` | `(1-p_l)/Δ` | `(1-p_l)/Δ`          | `(1-p_l)/Δ`          | `(1-p_l)/Δ` |
//! | `(1,0)₂→C`, `IC₂→C`       | `(1-p_l)/T` | `(1-p_l)/T` | `(1/T+1/R)(1-p_l)`   | `(1/T+1/R)(1-p_l)`   | `(1-p_l)/R` |
//! | `(0,1)₁→(0,1)₂`           | —           | `p_l/Δ`     | —                    | `p_l/Δ`              | `p_l/Δ`     |
//! | `(0,1)₁→(0,0)`            | `1/τ`       | `(1-p_l)/Δ` | `1/τ`                | `(1-p_l)/Δ`          | `(1-p_l)/Δ` |
//! | `(0,1)₂→(0,0)`            | —           | `1/τ`       | —                    | `1/τ + (1-p_l)/R`    | `(1-p_l)/R` |
//! | false removal `λ_f`       | `p_l^(τ/T)/τ` | `p_l^(τ/T)/τ` | `p_l^(τ/T)/τ`    | `p_l^(τ/T)/τ`        | `λ_e`       |
//!
//! Common transitions (Figure 3 narrative): updates `C→IC₁`, `(1,0)₂→(1,0)₁`,
//! `IC₂→IC₁` at rate `λ_u`; removal `C→(0,1)₁`, `IC₂→(0,1)₁`,
//! `(1,0)₂→(0,0)` at rate `λ_r`; false removal `C→(1,0)₂`, `IC₂→(1,0)₂` at
//! rate `λ_f`.  The model serializes events, so no update/removal/false
//! removal can originate from a fast-path state with a message in flight.

use super::states::SingleHopState;
use crate::params::SingleHopParams;
use crate::spec::ProtocolSpec;

/// One row of the transition table: a `from → to` transition and its rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEntry {
    /// Source state.
    pub from: SingleHopState,
    /// Destination state.
    pub to: SingleHopState,
    /// Transition rate (per second).
    pub rate: f64,
}

/// The full set of transitions of one protocol under one parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTable {
    /// The protocol the rates belong to.
    pub protocol: ProtocolSpec,
    /// All non-zero transitions.
    pub entries: Vec<RateEntry>,
}

impl RateTable {
    /// Accumulated rate of a particular transition (0 if absent).
    pub fn rate(&self, from: SingleHopState, to: SingleHopState) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.from == from && e.to == to)
            .map(|e| e.rate)
            .sum()
    }

    /// Total exit rate of a state.
    pub fn exit_rate(&self, from: SingleHopState) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.from == from)
            .map(|e| e.rate)
            .sum()
    }

    /// Renders the table in a human-readable form (used by the
    /// `table1_transitions` binary to reproduce Table I numerically).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Protocol {}\n", self.protocol));
        for e in &self.entries {
            out.push_str(&format!(
                "  {:>8} -> {:<8} {:>14.8} /s\n",
                e.from.paper_notation(),
                e.to.paper_notation(),
                e.rate
            ));
        }
        out
    }
}

/// Rate at which a slow-path state (`(1,0)₂` or `IC₂`) returns to the
/// consistent state (Table I row 3), derived from the repair mechanisms the
/// spec enables: a refresh stream contributes `1/T`, retransmission (of
/// reliable triggers, or of reliable refreshes) contributes `1/R`, and
/// either way the repairing message must survive the channel.
///
/// For the paper presets this reduces to exactly Table I: `(1−p_l)/T` for
/// SS/SS+ER, `(1/T + 1/R)(1−p_l)` for SS+RT/SS+RTR, `(1−p_l)/R` for HS.
pub fn slow_path_repair_rate(protocol: impl Into<ProtocolSpec>, p: &SingleHopParams) -> f64 {
    let spec = protocol.into();
    let success = 1.0 - p.loss;
    match (spec.uses_refresh(), spec.retransmits_repairs()) {
        (true, true) => (1.0 / p.refresh_timer + 1.0 / p.retrans_timer) * success,
        (true, false) => success / p.refresh_timer,
        (false, true) => success / p.retrans_timer,
        (false, false) => 0.0,
    }
}

/// The false-removal rate `λ_f` of Table I's last row: for the state-timeout
/// protocols it is the all-delivery-attempts-lost approximation — `p_l^(τ/T)/τ`
/// with best-effort refreshes, and `p_l^(τ/R)/τ` with reliable refreshes
/// (retransmissions every `R` multiply the attempts per timeout interval); a
/// protocol without a state timeout relies on an external failure detector
/// instead, whose false alarms arrive at rate `λ_e`.
pub fn false_removal_rate(protocol: impl Into<ProtocolSpec>, p: &SingleHopParams) -> f64 {
    let spec = protocol.into();
    if spec.has_external_detector() {
        p.false_signal_rate
    } else if spec.reliable_refresh() {
        // Delivery attempts arrive at the faster of the periodic refresh
        // stream (every `T`) and the retransmission retries (every `R`) —
        // a slow retransmission timer never makes things *worse* than SS.
        p.false_removal_rate_with_interval(p.refresh_timer.min(p.retrans_timer))
    } else {
        p.false_removal_rate()
    }
}

/// Rate at which orphaned receiver state is finally removed once the removal
/// message was lost (`(0,1)₂ → (0,0)`, Table I row 6): the state-timeout
/// backstop contributes `1/τ`, removal retransmission contributes
/// `(1−p_l)/R`.  `None` when the protocol has no `(0,1)₂` state (no explicit
/// removal, or no surviving cleanup mechanism).
pub fn orphan_cleanup_rate(protocol: impl Into<ProtocolSpec>, p: &SingleHopParams) -> Option<f64> {
    let spec = protocol.into();
    if !spec.uses_explicit_removal() {
        return None;
    }
    let success = 1.0 - p.loss;
    match (spec.uses_state_timeout(), spec.reliable_removal()) {
        (true, true) => Some(1.0 / p.timeout_timer + success / p.retrans_timer),
        (true, false) => Some(1.0 / p.timeout_timer),
        (false, true) => Some(success / p.retrans_timer),
        (false, false) => None,
    }
}

/// Rate of the `(0,1)₁ → (0,0)` transition (Table I row 5): state-timeout for
/// the protocols without explicit removal, successful delivery of the removal
/// message otherwise.
pub fn removal_delivery_rate(protocol: impl Into<ProtocolSpec>, p: &SingleHopParams) -> f64 {
    let spec = protocol.into();
    let success = 1.0 - p.loss;
    if spec.uses_explicit_removal() {
        success / p.delay
    } else {
        1.0 / p.timeout_timer
    }
}

/// Builds the complete transition list of one protocol.
///
/// The builder is written entirely in terms of [`ProtocolSpec`]'s mechanism
/// predicates — there is no per-protocol `match` left — so any coherent
/// composition of mechanisms yields a well-formed chain, and the paper
/// presets reproduce Table I bit for bit.
pub fn protocol_transitions(protocol: impl Into<ProtocolSpec>, p: &SingleHopParams) -> RateTable {
    let protocol: ProtocolSpec = protocol.into();
    let mut table = RateTable {
        protocol,
        entries: Vec::new(),
    };
    protocol_transitions_into(protocol, p, &mut table);
    table
}

/// [`protocol_transitions`] into a caller-owned table (entries cleared
/// first), so sweep loops re-fill one allocation per point.
///
/// Since the state-machines-as-data refactor this builder consumes the
/// declarative row generator in [`crate::fsm`]: each row's structural guard
/// selects the transitions that exist, and its symbolic rate expression is
/// evaluated through the same rate helpers as always, so the emitted entry
/// stream is bit-identical to the historical predicate-derived builder
/// (kept below as [`protocol_transitions_reference_into`] for the model
/// checker's agreement property).
pub fn protocol_transitions_into(
    protocol: impl Into<ProtocolSpec>,
    p: &SingleHopParams,
    table: &mut RateTable,
) {
    let protocol: ProtocolSpec = protocol.into();
    table.protocol = protocol;
    table.entries.clear();
    let entries = &mut table.entries;
    crate::fsm::each_single_hop_row(protocol, &mut |from, _event, _guard, to, rate| {
        let rate = rate.eval(protocol, p);
        if rate > 0.0 {
            entries.push(RateEntry { from, to, rate });
        }
    });
}

/// The historical predicate-derived builder, kept verbatim as the golden
/// reference the table-driven path is checked against (exact equality, the
/// way `LuSolver` is pinned to the Gaussian reference).
pub fn protocol_transitions_reference(
    protocol: impl Into<ProtocolSpec>,
    p: &SingleHopParams,
) -> RateTable {
    let protocol: ProtocolSpec = protocol.into();
    let mut table = RateTable {
        protocol,
        entries: Vec::new(),
    };
    protocol_transitions_reference_into(protocol, p, &mut table);
    table
}

/// [`protocol_transitions_reference`] into a caller-owned table.
pub fn protocol_transitions_reference_into(
    protocol: impl Into<ProtocolSpec>,
    p: &SingleHopParams,
    table: &mut RateTable,
) {
    use SingleHopState::*;
    let protocol: ProtocolSpec = protocol.into();
    table.protocol = protocol;
    table.entries.clear();
    let entries = &mut table.entries;
    let mut push = |from: SingleHopState, to: SingleHopState, rate: f64| {
        if rate > 0.0 {
            entries.push(RateEntry { from, to, rate });
        }
    };

    let success = 1.0 - p.loss;
    let fast_delivery = success / p.delay;
    let fast_loss = p.loss / p.delay;
    let slow_repair = slow_path_repair_rate(protocol, p);
    let lambda_f = false_removal_rate(protocol, p);

    // --- Setup and update propagation (rows 1–3 of Table I). ---
    push(Setup1, Consistent, fast_delivery);
    push(Setup1, Setup2, fast_loss);
    push(Diff1, Consistent, fast_delivery);
    push(Diff1, Diff2, fast_loss);
    push(Setup2, Consistent, slow_repair);
    push(Diff2, Consistent, slow_repair);

    // --- Sender-side updates (rate λ_u, Figure 3). ---
    push(Consistent, Diff1, p.update_rate);
    push(Setup2, Setup1, p.update_rate);
    push(Diff2, Diff1, p.update_rate);

    // --- Sender-side removal (rate λ_r, Figure 3). ---
    push(Setup2, Absorbed, p.removal_rate);
    push(Consistent, Removing1, p.removal_rate);
    push(Diff2, Removing1, p.removal_rate);

    // --- False removal (rate λ_f, Figure 3 / Table I last row). ---
    push(Consistent, Setup2, lambda_f);
    push(Diff2, Setup2, lambda_f);

    // --- Orphan removal at the receiver (rows 4–6 of Table I). ---
    push(Removing1, Absorbed, removal_delivery_rate(protocol, p));
    if protocol.uses_explicit_removal() {
        push(Removing1, Removing2, fast_loss);
    }
    if let Some(rate) = orphan_cleanup_rate(protocol, p) {
        push(Removing2, Absorbed, rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Protocol;
    use SingleHopState::*;

    fn params() -> SingleHopParams {
        SingleHopParams::kazaa_defaults()
    }

    #[test]
    fn fast_path_rates_are_protocol_independent() {
        let p = params();
        for proto in Protocol::ALL {
            let t = protocol_transitions(proto, &p);
            assert!((t.rate(Setup1, Consistent) - (1.0 - p.loss) / p.delay).abs() < 1e-12);
            assert!((t.rate(Setup1, Setup2) - p.loss / p.delay).abs() < 1e-12);
            assert!((t.rate(Diff1, Consistent) - (1.0 - p.loss) / p.delay).abs() < 1e-12);
            assert!((t.rate(Diff1, Diff2) - p.loss / p.delay).abs() < 1e-12);
        }
    }

    #[test]
    fn slow_path_repair_matches_table_one() {
        let p = params();
        let success = 1.0 - p.loss;
        assert!(
            (slow_path_repair_rate(Protocol::Ss, &p) - success / p.refresh_timer).abs() < 1e-12
        );
        assert!(
            (slow_path_repair_rate(Protocol::SsRt, &p)
                - (1.0 / p.refresh_timer + 1.0 / p.retrans_timer) * success)
                .abs()
                < 1e-12
        );
        assert!(
            (slow_path_repair_rate(Protocol::Hs, &p) - success / p.retrans_timer).abs() < 1e-12
        );
        // Reliable-trigger protocols recover faster from a lost trigger.
        assert!(
            slow_path_repair_rate(Protocol::SsRt, &p) > slow_path_repair_rate(Protocol::Ss, &p)
        );
    }

    #[test]
    fn removing2_exists_only_with_explicit_removal() {
        let p = params();
        for proto in Protocol::ALL {
            let t = protocol_transitions(proto, &p);
            let has_r2 = t.rate(Removing1, Removing2) > 0.0 || t.rate(Removing2, Absorbed) > 0.0;
            assert_eq!(has_r2, proto.uses_explicit_removal(), "{proto}");
        }
    }

    #[test]
    fn removal_delivery_uses_timeout_without_explicit_removal() {
        let p = params();
        let ss = protocol_transitions(Protocol::Ss, &p);
        assert!((ss.rate(Removing1, Absorbed) - 1.0 / p.timeout_timer).abs() < 1e-12);
        let sser = protocol_transitions(Protocol::SsEr, &p);
        assert!((sser.rate(Removing1, Absorbed) - (1.0 - p.loss) / p.delay).abs() < 1e-12);
        // Explicit removal removes orphaned state much faster than timeout.
        assert!(sser.rate(Removing1, Absorbed) > ss.rate(Removing1, Absorbed));
    }

    #[test]
    fn hs_false_removal_uses_external_signal_rate() {
        let p = params();
        assert_eq!(false_removal_rate(Protocol::Hs, &p), p.false_signal_rate);
        assert_eq!(false_removal_rate(Protocol::Ss, &p), p.false_removal_rate());
        let hs = protocol_transitions(Protocol::Hs, &p);
        assert!((hs.rate(Consistent, Setup2) - p.false_signal_rate).abs() < 1e-18);
    }

    #[test]
    fn reliable_refresh_lowers_the_false_removal_rate() {
        use crate::spec::{ProtocolSpec, RefreshMode};
        // Retransmissions every R multiply the delivery attempts per timeout
        // interval, so the all-attempts-lost exponent becomes τ/R.
        let mut p = params();
        p.loss = 0.5;
        p.timeout_timer = 2.0 * p.refresh_timer;
        let ss_rr = ProtocolSpec::soft_state("SS+RR").with_refresh(Some(RefreshMode::Reliable));
        let rr = false_removal_rate(ss_rr, &p);
        let ss = false_removal_rate(Protocol::Ss, &p);
        assert!(
            rr < ss,
            "reliable refresh must cut λ_f ({rr} vs {ss}), matching the simulator"
        );
        let expected = p.loss.powf(p.timeout_timer / p.retrans_timer) / p.timeout_timer;
        assert!((rr - expected).abs() < 1e-18);
    }

    #[test]
    fn orphan_cleanup_rates() {
        let p = params();
        assert_eq!(orphan_cleanup_rate(Protocol::Ss, &p), None);
        assert_eq!(orphan_cleanup_rate(Protocol::SsRt, &p), None);
        assert!(
            (orphan_cleanup_rate(Protocol::SsEr, &p).unwrap() - 1.0 / p.timeout_timer).abs()
                < 1e-12
        );
        let rtr = orphan_cleanup_rate(Protocol::SsRtr, &p).unwrap();
        assert!((rtr - (1.0 / p.timeout_timer + (1.0 - p.loss) / p.retrans_timer)).abs() < 1e-12);
        let hs = orphan_cleanup_rate(Protocol::Hs, &p).unwrap();
        assert!((hs - (1.0 - p.loss) / p.retrans_timer).abs() < 1e-12);
        // SS+RTR can also fall back to timeout, so it cleans up at least as
        // fast as HS.
        assert!(rtr >= hs);
    }

    #[test]
    fn absorbing_state_has_no_exit() {
        let p = params();
        for proto in Protocol::ALL {
            let t = protocol_transitions(proto, &p);
            assert_eq!(t.exit_rate(Absorbed), 0.0, "{proto}");
        }
    }

    #[test]
    fn serialization_constraints_hold() {
        // No update, removal or false removal out of fast-path states.
        let p = params();
        for proto in Protocol::ALL {
            let t = protocol_transitions(proto, &p);
            assert_eq!(t.rate(Setup1, Absorbed), 0.0);
            assert_eq!(t.rate(Diff1, Removing1), 0.0);
            assert_eq!(t.rate(Diff1, Setup2), 0.0);
            assert_eq!(t.rate(Diff1, Diff1), 0.0);
            assert_eq!(t.rate(Consistent, Setup1), 0.0);
        }
    }

    #[test]
    fn every_rate_is_positive_and_finite() {
        let p = params();
        for proto in Protocol::ALL {
            for e in protocol_transitions(proto, &p).entries {
                assert!(e.rate.is_finite() && e.rate > 0.0, "{proto} {e:?}");
            }
        }
    }

    #[test]
    fn render_contains_protocol_and_states() {
        let p = params();
        let table = protocol_transitions(Protocol::SsEr, &p);
        let text = table.render();
        assert!(text.contains("SS+ER"));
        assert!(text.contains("(1,0)_1"));
        assert!(text.contains("(0,0)"));
    }

    #[test]
    fn zero_loss_removes_slow_path_entries() {
        let mut p = params();
        p.loss = 0.0;
        let t = protocol_transitions(Protocol::Ss, &p);
        assert_eq!(t.rate(Setup1, Setup2), 0.0);
        assert_eq!(t.rate(Diff1, Diff2), 0.0);
        // False removal disappears as well (p_l^(τ/T) = 0).
        assert_eq!(t.rate(Consistent, Setup2), 0.0);
    }
}
