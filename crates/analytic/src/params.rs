//! Protocols and model parameters.

use crate::spec::ProtocolSpec;
use std::fmt;

/// A typed description of why a parameter set (or a simulation configuration
/// built from one) is invalid.
///
/// Every `validate` method in the workspace returns this enum instead of a
/// formatted string, so callers can match on the failure instead of parsing
/// prose.  The [`fmt::Display`] rendering keeps the exact wording the old
/// stringly-typed errors used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The loss probability `p_l` is outside `[0, 1]`.
    LossOutOfRange(f64),
    /// The (per-hop) channel delay is not positive.
    NonPositiveDelay {
        /// Whether the delay is the multi-hop model's per-hop delay.
        per_hop: bool,
    },
    /// The single-hop update rate is negative (zero is allowed: a session
    /// with no updates).
    NegativeUpdateRate,
    /// The multi-hop update rate is not positive (the stationary update
    /// process needs updates).
    NonPositiveUpdateRate,
    /// The removal rate is not positive (sessions must be finite).
    NonPositiveRemovalRate,
    /// One of the refresh / state-timeout / retransmission timers is not
    /// positive.
    NonPositiveTimers,
    /// The external false-signal rate is negative.
    NegativeFalseSignalRate,
    /// The multi-hop model was given zero hops.
    ZeroHops,
    /// A loss-model override has a mean loss outside `[0, 1]`.
    LossModelMeanOutOfRange(f64),
    /// A simulation horizon is not positive.
    NonPositiveHorizon,
    /// A scenario's inconsistency weight is not positive.
    NonPositiveWeight(f64),
    /// A fault schedule attached to a simulation configuration failed its
    /// own validation (the schedule's `validate` reports the typed detail —
    /// the analytic layer has no dependency on the fault types).
    InvalidFaultSchedule,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LossOutOfRange(p) => {
                write!(f, "loss probability {p} outside [0, 1]")
            }
            ConfigError::NonPositiveDelay { per_hop: false } => {
                write!(f, "channel delay must be positive")
            }
            ConfigError::NonPositiveDelay { per_hop: true } => {
                write!(f, "per-hop delay must be positive")
            }
            ConfigError::NegativeUpdateRate => write!(f, "update rate must be non-negative"),
            ConfigError::NonPositiveUpdateRate => {
                write!(
                    f,
                    "update rate must be positive (stationary update process)"
                )
            }
            ConfigError::NonPositiveRemovalRate => {
                write!(f, "removal rate must be positive (finite sessions)")
            }
            ConfigError::NonPositiveTimers => write!(f, "timers must be positive"),
            ConfigError::NegativeFalseSignalRate => {
                write!(f, "false signal rate must be non-negative")
            }
            ConfigError::ZeroHops => write!(f, "multi-hop model needs at least one hop"),
            ConfigError::LossModelMeanOutOfRange(p) => {
                write!(f, "loss model mean {p} outside [0, 1]")
            }
            ConfigError::NonPositiveHorizon => write!(f, "simulation horizon must be positive"),
            ConfigError::NonPositiveWeight(w) => {
                write!(f, "inconsistency weight {w} must be positive")
            }
            ConfigError::InvalidFaultSchedule => {
                write!(
                    f,
                    "fault schedule invalid (FaultSchedule::validate has the detail)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The five signaling protocols studied by the paper (Section II).
///
/// Since the protocol layer was opened up, this enum is a set of *names* for
/// the five paper presets of [`ProtocolSpec`] — the mechanism-composition
/// type every model and simulator actually runs on.  Each variant converts
/// into its preset via [`Protocol::spec`] (or `Into<ProtocolSpec>`, which
/// every protocol-taking API accepts), so existing call sites keep working
/// unchanged.  The mechanism predicates on this enum are kept as the
/// paper-transcribed ground truth the presets are tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Pure soft state: best-effort triggers + periodic refresh; removal only
    /// by receiver-side state timeout.
    Ss,
    /// Soft state with best-effort explicit removal messages.
    SsEr,
    /// Soft state with reliable (ACK + retransmit) trigger messages and a
    /// notification that lets the sender recover from false removal.
    SsRt,
    /// Soft state with reliable triggers *and* reliable explicit removal.
    SsRtr,
    /// Pure hard state: reliable setup/update/removal, no refreshes, no state
    /// timeout; orphan removal via an external failure signal.
    Hs,
}

impl Protocol {
    /// All protocols in the order the paper lists them.
    pub const ALL: [Protocol; 5] = [
        Protocol::Ss,
        Protocol::SsEr,
        Protocol::SsRt,
        Protocol::SsRtr,
        Protocol::Hs,
    ];

    /// The three protocols the paper evaluates in the multi-hop setting
    /// (Section III-B).
    pub const MULTI_HOP: [Protocol; 3] = [Protocol::Ss, Protocol::SsRt, Protocol::Hs];

    /// The protocol's mechanism composition — the [`ProtocolSpec`] preset
    /// this name stands for.
    pub const fn spec(self) -> ProtocolSpec {
        match self {
            Protocol::Ss => ProtocolSpec::SS,
            Protocol::SsEr => ProtocolSpec::SS_ER,
            Protocol::SsRt => ProtocolSpec::SS_RT,
            Protocol::SsRtr => ProtocolSpec::SS_RTR,
            Protocol::Hs => ProtocolSpec::HS,
        }
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Ss => "SS",
            Protocol::SsEr => "SS+ER",
            Protocol::SsRt => "SS+RT",
            Protocol::SsRtr => "SS+RTR",
            Protocol::Hs => "HS",
        }
    }

    /// Whether the protocol sends periodic refresh messages.
    pub fn uses_refresh(self) -> bool {
        !matches!(self, Protocol::Hs)
    }

    /// Whether the protocol removes receiver state on a state-timeout timer.
    pub fn uses_state_timeout(self) -> bool {
        !matches!(self, Protocol::Hs)
    }

    /// Whether the protocol sends explicit state-removal messages.
    pub fn uses_explicit_removal(self) -> bool {
        matches!(self, Protocol::SsEr | Protocol::SsRtr | Protocol::Hs)
    }

    /// Whether trigger (setup/update) messages are sent reliably
    /// (ACK + retransmission).
    pub fn reliable_triggers(self) -> bool {
        matches!(self, Protocol::SsRt | Protocol::SsRtr | Protocol::Hs)
    }

    /// Whether explicit removal messages are sent reliably.
    pub fn reliable_removal(self) -> bool {
        matches!(self, Protocol::SsRtr | Protocol::Hs)
    }

    /// Whether the receiver notifies the sender when it removes state (so the
    /// sender can repair a false removal with a fresh trigger).  The paper
    /// gives this mechanism to SS+RT, SS+RTR and HS.
    pub fn notifies_on_removal(self) -> bool {
        matches!(self, Protocol::SsRt | Protocol::SsRtr | Protocol::Hs)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<Protocol> for ProtocolSpec {
    fn from(p: Protocol) -> Self {
        p.spec()
    }
}

impl PartialEq<Protocol> for ProtocolSpec {
    fn eq(&self, other: &Protocol) -> bool {
        *self == other.spec()
    }
}

impl PartialEq<ProtocolSpec> for Protocol {
    fn eq(&self, other: &ProtocolSpec) -> bool {
        self.spec() == *other
    }
}

/// Parameters of the single-hop model (Section III-A).
///
/// Defaults correspond to the paper's Kazaa peer ↔ supernode scenario.  The
/// source text available to us is OCR-garbled around the numeric values; the
/// decoded defaults (documented in `DESIGN.md`) are: `p_l = 0.02`,
/// `Δ = 30 ms`, `1/λ_u = 30 s`, `1/λ_r = 1800 s`, `T = 5 s`, `τ = 3 T`,
/// `R = 2 Δ`, `λ_e = 1e-4 /s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleHopParams {
    /// Signaling channel loss probability `p_l`.
    pub loss: f64,
    /// Mean one-way signaling channel delay `Δ` in seconds.
    pub delay: f64,
    /// Signaling state update rate `λ_u` (updates per second at the sender).
    pub update_rate: f64,
    /// Signaling state removal rate `λ_r`; `1/λ_r` is the mean lifetime of
    /// the state at the sender (the "session length").
    pub removal_rate: f64,
    /// Soft-state refresh timer `T` in seconds.
    pub refresh_timer: f64,
    /// Soft-state state-timeout timer `τ` in seconds.
    pub timeout_timer: f64,
    /// Retransmission timer `R` in seconds (reliable transmissions).
    pub retrans_timer: f64,
    /// Rate `λ_e` at which the hard-state protocol's external failure
    /// detector falsely signals a sender crash.
    pub false_signal_rate: f64,
}

impl Default for SingleHopParams {
    fn default() -> Self {
        Self::kazaa_defaults()
    }
}

impl SingleHopParams {
    /// The paper's default (Kazaa) parameter set.
    pub fn kazaa_defaults() -> Self {
        let delay = 0.03;
        Self {
            loss: 0.02,
            delay,
            update_rate: 1.0 / 30.0,
            removal_rate: 1.0 / 1800.0,
            refresh_timer: 5.0,
            timeout_timer: 15.0,
            retrans_timer: 2.0 * delay,
            false_signal_rate: 1e-4,
        }
    }

    /// Mean session length `1/λ_r` in seconds.
    pub fn mean_lifetime(&self) -> f64 {
        if self.removal_rate <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.removal_rate
        }
    }

    /// Sets the mean session length (`1/λ_r`).
    pub fn with_mean_lifetime(mut self, seconds: f64) -> Self {
        self.removal_rate = 1.0 / seconds;
        self
    }

    /// Sets the mean update interval (`1/λ_u`).
    pub fn with_mean_update_interval(mut self, seconds: f64) -> Self {
        self.update_rate = 1.0 / seconds;
        self
    }

    /// Sets the refresh timer and keeps the paper's convention of
    /// `τ = 3 · T` (used when sweeping `T`, Figures 6, 7, 9, 12, 19).
    pub fn with_refresh_timer_scaled_timeout(mut self, refresh: f64) -> Self {
        self.refresh_timer = refresh;
        self.timeout_timer = 3.0 * refresh;
        self
    }

    /// Sets the channel delay and keeps the paper's convention of
    /// `R = 2 · Δ` (the retransmission timer tracks the round-trip time).
    pub fn with_delay_scaled_retrans(mut self, delay: f64) -> Self {
        self.delay = delay;
        self.retrans_timer = 2.0 * delay;
        self
    }

    /// The soft-state false-removal rate
    /// `λ_f = p_l^(τ/T) / τ` — the approximate rate at which *all* refreshes
    /// within a timeout interval are lost, causing the receiver to time the
    /// state out even though the sender still has it.
    pub fn false_removal_rate(&self) -> f64 {
        self.false_removal_rate_with_interval(self.refresh_timer)
    }

    /// [`SingleHopParams::false_removal_rate`] with an explicit
    /// delivery-attempt interval: `p_l^(τ/interval) / τ`.  Best-effort
    /// refreshes attempt once per refresh interval `T`; reliable refreshes
    /// also retry every `R`, so their attempt interval is `min(T, R)`.
    pub fn false_removal_rate_with_interval(&self, attempt_interval: f64) -> f64 {
        if self.timeout_timer <= 0.0 || attempt_interval <= 0.0 {
            return 0.0;
        }
        let exponent = self.timeout_timer / attempt_interval;
        self.loss.max(0.0).powf(exponent) / self.timeout_timer
    }

    /// Validates the parameter set, returning the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(ConfigError::LossOutOfRange(self.loss));
        }
        if self.delay <= 0.0 {
            return Err(ConfigError::NonPositiveDelay { per_hop: false });
        }
        if self.update_rate < 0.0 {
            return Err(ConfigError::NegativeUpdateRate);
        }
        if self.removal_rate <= 0.0 {
            return Err(ConfigError::NonPositiveRemovalRate);
        }
        if self.refresh_timer <= 0.0 || self.timeout_timer <= 0.0 || self.retrans_timer <= 0.0 {
            return Err(ConfigError::NonPositiveTimers);
        }
        if self.false_signal_rate < 0.0 {
            return Err(ConfigError::NegativeFalseSignalRate);
        }
        Ok(())
    }
}

/// Parameters of the multi-hop model (Section III-B).
///
/// The sender lifetime is infinite in this model (the paper studies the
/// stationary update-propagation process), so there is no removal rate.
/// Defaults correspond to the paper's bandwidth-reservation scenario:
/// `K = 20` hops, `p_l = 0.02` and `Δ = 30 ms` per hop, `1/λ_u = 60 s`,
/// `T = 5 s`, `τ = 3 T`, `R = 2 Δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiHopParams {
    /// Number of hops `K` between the signaling sender and the final
    /// receiver.
    pub hops: usize,
    /// Per-hop loss probability `p_l`.
    pub loss: f64,
    /// Per-hop mean one-way delay `Δ` in seconds.
    pub delay: f64,
    /// State update rate `λ_u` at the sender.
    pub update_rate: f64,
    /// Soft-state refresh timer `T` in seconds.
    pub refresh_timer: f64,
    /// Soft-state state-timeout timer `τ` in seconds.
    pub timeout_timer: f64,
    /// Retransmission timer `R` in seconds.
    pub retrans_timer: f64,
    /// Per-receiver false external-signal rate for HS.
    pub false_signal_rate: f64,
}

impl Default for MultiHopParams {
    fn default() -> Self {
        Self::reservation_defaults()
    }
}

impl MultiHopParams {
    /// The paper's default multi-hop (bandwidth reservation) parameter set.
    pub fn reservation_defaults() -> Self {
        let delay = 0.03;
        let loss: f64 = 0.02;
        Self {
            hops: 20,
            loss,
            delay,
            update_rate: 1.0 / 60.0,
            refresh_timer: 5.0,
            timeout_timer: 15.0,
            retrans_timer: 2.0 * delay,
            false_signal_rate: loss.powi(3) / 15.0,
        }
    }

    /// Sets the hop count.
    pub fn with_hops(mut self, hops: usize) -> Self {
        self.hops = hops;
        self
    }

    /// Sets the refresh timer, keeping `τ = 3 · T`.
    pub fn with_refresh_timer_scaled_timeout(mut self, refresh: f64) -> Self {
        self.refresh_timer = refresh;
        self.timeout_timer = 3.0 * refresh;
        self
    }

    /// Probability that a message survives `n` consecutive hops.
    pub fn survival(&self, n: usize) -> f64 {
        (1.0 - self.loss).powi(n as i32)
    }

    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.hops == 0 {
            return Err(ConfigError::ZeroHops);
        }
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(ConfigError::LossOutOfRange(self.loss));
        }
        if self.delay <= 0.0 {
            return Err(ConfigError::NonPositiveDelay { per_hop: true });
        }
        if self.update_rate <= 0.0 {
            return Err(ConfigError::NonPositiveUpdateRate);
        }
        if self.refresh_timer <= 0.0 || self.timeout_timer <= 0.0 || self.retrans_timer <= 0.0 {
            return Err(ConfigError::NonPositiveTimers);
        }
        if self.false_signal_rate < 0.0 {
            return Err(ConfigError::NegativeFalseSignalRate);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_labels_match_paper() {
        let labels: Vec<&str> = Protocol::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["SS", "SS+ER", "SS+RT", "SS+RTR", "HS"]);
        assert_eq!(format!("{}", Protocol::SsRtr), "SS+RTR");
    }

    #[test]
    fn mechanism_matrix_matches_section_two() {
        use Protocol::*;
        // Refresh + timeout: all soft-state variants, not HS.
        for p in [Ss, SsEr, SsRt, SsRtr] {
            assert!(p.uses_refresh(), "{p}");
            assert!(p.uses_state_timeout(), "{p}");
        }
        assert!(!Hs.uses_refresh());
        assert!(!Hs.uses_state_timeout());
        // Explicit removal: SS+ER, SS+RTR, HS.
        assert!(!Ss.uses_explicit_removal());
        assert!(SsEr.uses_explicit_removal());
        assert!(!SsRt.uses_explicit_removal());
        assert!(SsRtr.uses_explicit_removal());
        assert!(Hs.uses_explicit_removal());
        // Reliable triggers: SS+RT, SS+RTR, HS.
        assert!(!Ss.reliable_triggers());
        assert!(!SsEr.reliable_triggers());
        assert!(SsRt.reliable_triggers());
        assert!(SsRtr.reliable_triggers());
        assert!(Hs.reliable_triggers());
        // Reliable removal: SS+RTR, HS.
        assert!(SsRtr.reliable_removal());
        assert!(Hs.reliable_removal());
        assert!(!SsRt.reliable_removal());
        // Notification on removal: the reliable-trigger protocols.
        assert!(SsRt.notifies_on_removal());
        assert!(!SsEr.notifies_on_removal());
    }

    #[test]
    fn kazaa_defaults_are_valid_and_consistent() {
        let p = SingleHopParams::default();
        p.validate().unwrap();
        assert_eq!(p.mean_lifetime(), 1800.0);
        assert_eq!(p.timeout_timer, 3.0 * p.refresh_timer);
        assert_eq!(p.retrans_timer, 2.0 * p.delay);
    }

    #[test]
    fn false_removal_rate_formula() {
        let p = SingleHopParams::default();
        let expected = p.loss.powf(p.timeout_timer / p.refresh_timer) / p.timeout_timer;
        assert!((p.false_removal_rate() - expected).abs() < 1e-18);
        // Higher loss => higher false removal rate.
        let mut lossy = p;
        lossy.loss = 0.3;
        assert!(lossy.false_removal_rate() > p.false_removal_rate());
        // Longer timeout (more refresh opportunities) => lower rate.
        let mut long_timeout = p;
        long_timeout.timeout_timer = 50.0;
        assert!(long_timeout.false_removal_rate() < p.false_removal_rate());
    }

    #[test]
    fn builder_helpers() {
        let p = SingleHopParams::default()
            .with_mean_lifetime(100.0)
            .with_mean_update_interval(10.0)
            .with_refresh_timer_scaled_timeout(2.0)
            .with_delay_scaled_retrans(0.1);
        assert_eq!(p.mean_lifetime(), 100.0);
        assert_eq!(p.update_rate, 0.1);
        assert_eq!(p.refresh_timer, 2.0);
        assert_eq!(p.timeout_timer, 6.0);
        assert_eq!(p.delay, 0.1);
        assert_eq!(p.retrans_timer, 0.2);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let p = SingleHopParams {
            loss: 1.5,
            ..Default::default()
        };
        assert_eq!(p.validate(), Err(ConfigError::LossOutOfRange(1.5)));
        let p = SingleHopParams {
            delay: 0.0,
            ..Default::default()
        };
        assert_eq!(
            p.validate(),
            Err(ConfigError::NonPositiveDelay { per_hop: false })
        );
        let p = SingleHopParams {
            removal_rate: 0.0,
            ..Default::default()
        };
        assert_eq!(p.validate(), Err(ConfigError::NonPositiveRemovalRate));
        let p = SingleHopParams {
            refresh_timer: -1.0,
            ..Default::default()
        };
        assert_eq!(p.validate(), Err(ConfigError::NonPositiveTimers));
    }

    #[test]
    fn config_errors_render_and_implement_error() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::LossOutOfRange(1.5));
        assert_eq!(e.to_string(), "loss probability 1.5 outside [0, 1]");
        assert_eq!(
            ConfigError::NonPositiveDelay { per_hop: true }.to_string(),
            "per-hop delay must be positive"
        );
        assert_eq!(
            ConfigError::NonPositiveDelay { per_hop: false }.to_string(),
            "channel delay must be positive"
        );
        assert_eq!(
            ConfigError::ZeroHops.to_string(),
            "multi-hop model needs at least one hop"
        );
        assert_eq!(
            ConfigError::NonPositiveHorizon.to_string(),
            "simulation horizon must be positive"
        );
    }

    #[test]
    fn multi_hop_defaults_are_valid() {
        let p = MultiHopParams::default();
        p.validate().unwrap();
        assert_eq!(p.hops, 20);
        assert!((p.survival(1) - 0.98).abs() < 1e-12);
        assert!((p.survival(2) - 0.98 * 0.98).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_validation() {
        let p = MultiHopParams::default().with_hops(0);
        assert!(p.validate().is_err());
        let p = MultiHopParams {
            update_rate: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn multi_hop_refresh_scaling() {
        let p = MultiHopParams::default().with_refresh_timer_scaled_timeout(10.0);
        assert_eq!(p.refresh_timer, 10.0);
        assert_eq!(p.timeout_timer, 30.0);
    }
}
