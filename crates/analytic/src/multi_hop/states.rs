//! Markov states of the multi-hop model (paper Figures 15 and 16).

use std::fmt;

/// Whether the chain is progressing on the *fast path* (an explicit trigger
/// message is travelling hop by hop) or the *slow path* (the trigger was lost
/// at some hop and the system waits for a refresh / retransmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathMode {
    /// A trigger is in flight toward the next hop (`s = 0` in the paper).
    Fast,
    /// The trigger was lost; waiting for refresh or retransmission (`s = 1`).
    Slow,
}

/// A state of the multi-hop signaling Markov chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiHopState {
    /// `(i, s)` — the first `i` hops hold state consistent with the sender,
    /// and the chain is on the fast or slow path toward hop `i + 1`.
    /// `(K, Fast)` is the fully consistent state.
    Progress {
        /// Number of consistent hops `i` (`0 ..= K`).
        consistent: usize,
        /// Fast or slow path.
        mode: PathMode,
    },
    /// `F` — the hard-state recovery state entered after a false external
    /// failure signal removed state at the receivers; the sender is being
    /// notified and will re-install state.
    Recovery,
}

impl MultiHopState {
    /// Convenience constructor for a fast-path state.
    pub fn fast(consistent: usize) -> Self {
        MultiHopState::Progress {
            consistent,
            mode: PathMode::Fast,
        }
    }

    /// Convenience constructor for a slow-path state.
    pub fn slow(consistent: usize) -> Self {
        MultiHopState::Progress {
            consistent,
            mode: PathMode::Slow,
        }
    }

    /// Number of consistent hops in this state (0 during HS recovery, where
    /// the receivers have discarded their state).
    pub fn consistent_hops(&self) -> usize {
        match self {
            MultiHopState::Progress { consistent, .. } => *consistent,
            MultiHopState::Recovery => 0,
        }
    }

    /// Whether the given hop (1-indexed, `1 ..= K`) is consistent in this
    /// state.
    pub fn hop_is_consistent(&self, hop: usize) -> bool {
        hop >= 1 && self.consistent_hops() >= hop
    }

    /// Whether this is the fully consistent state for a path of `k` hops.
    pub fn is_fully_consistent(&self, k: usize) -> bool {
        matches!(
            self,
            MultiHopState::Progress {
                consistent,
                mode: PathMode::Fast
            } if *consistent == k
        )
    }

    /// Enumerates every state of a `k`-hop model for the given protocol
    /// capabilities (`with_recovery` adds the HS recovery state).
    pub fn enumerate(k: usize, with_recovery: bool) -> Vec<MultiHopState> {
        let mut states = Vec::with_capacity(2 * k + 2);
        for i in 0..=k {
            states.push(MultiHopState::fast(i));
        }
        for i in 0..k {
            states.push(MultiHopState::slow(i));
        }
        if with_recovery {
            states.push(MultiHopState::Recovery);
        }
        states
    }
}

impl fmt::Display for MultiHopState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiHopState::Progress { consistent, mode } => {
                let s = match mode {
                    PathMode::Fast => 0,
                    PathMode::Slow => 1,
                };
                write!(f, "({consistent},{s})")
            }
            MultiHopState::Recovery => write!(f, "F"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_size() {
        // K fast states 0..K plus the fully consistent one, K slow states,
        // optionally the recovery state.
        assert_eq!(MultiHopState::enumerate(5, false).len(), 11);
        assert_eq!(MultiHopState::enumerate(5, true).len(), 12);
        let set: HashSet<_> = MultiHopState::enumerate(5, true).into_iter().collect();
        assert_eq!(set.len(), 12, "all states distinct");
    }

    #[test]
    fn hop_consistency() {
        let s = MultiHopState::fast(3);
        assert!(s.hop_is_consistent(1));
        assert!(s.hop_is_consistent(3));
        assert!(!s.hop_is_consistent(4));
        assert!(!s.hop_is_consistent(0), "hops are 1-indexed");
        assert!(!MultiHopState::Recovery.hop_is_consistent(1));
    }

    #[test]
    fn fully_consistent_detection() {
        assert!(MultiHopState::fast(5).is_fully_consistent(5));
        assert!(!MultiHopState::fast(4).is_fully_consistent(5));
        assert!(!MultiHopState::slow(5).is_fully_consistent(5));
        assert!(!MultiHopState::Recovery.is_fully_consistent(5));
    }

    #[test]
    fn display_notation() {
        assert_eq!(MultiHopState::fast(2).to_string(), "(2,0)");
        assert_eq!(MultiHopState::slow(0).to_string(), "(0,1)");
        assert_eq!(MultiHopState::Recovery.to_string(), "F");
    }
}
