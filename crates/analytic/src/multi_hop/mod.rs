//! The multi-hop analytic model (Section III-B, Figures 13–16).
//!
//! A signaling sender installs and updates state at every node along a chain
//! of `K` hops.  The sender's state lives forever (`λ_r → 0`); the model
//! studies the stationary process of updates propagating down the chain,
//! refreshes keeping state alive, trigger losses, state timeouts cascading
//! from the first hop that misses its refreshes, and (for HS) false external
//! failure signals followed by a recovery phase.
//!
//! The paper evaluates three protocols in this setting: end-to-end soft state
//! (SS), soft state with hop-by-hop reliable triggers (SS+RT), and hard state
//! (HS).

pub mod model;
pub mod states;
pub mod transitions;

pub use model::{solve_all_multi_hop, MultiHopModel, MultiHopSolution};
pub use states::{MultiHopState, PathMode};
pub use transitions::{multi_hop_transitions, multi_hop_transitions_into};
