//! Solving the multi-hop chain and extracting the paper's metrics
//! (Equations 12–17).

use super::states::MultiHopState;
use super::transitions::multi_hop_transitions;
use crate::params::{MultiHopParams, Protocol};
use crate::single_hop::model::ModelError;
use crate::spec::ProtocolSpec;
use ctmc::CtmcBuilder;
use std::collections::HashMap;

/// Per-message-class rates of the multi-hop model, measured in *hop
/// transmissions* per second (a refresh that travels 10 hops counts as 10
/// transmissions), matching the paper's message-overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MultiHopMessageRates {
    /// Trigger (update) hop transmissions.
    pub trigger: f64,
    /// Refresh hop transmissions (Equation 14's expected per-refresh hop
    /// count times the refresh frequency).
    pub refresh: f64,
    /// Hop-by-hop retransmissions of lost triggers.
    pub retransmission: f64,
    /// Hop-by-hop acknowledgments.
    pub ack: f64,
    /// Recovery traffic after a false external signal (HS only).
    pub recovery: f64,
}

impl MultiHopMessageRates {
    /// Total hop-transmission rate.
    pub fn total(&self) -> f64 {
        self.trigger + self.refresh + self.retransmission + self.ack + self.recovery
    }
}

/// The solved multi-hop model for one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHopSolution {
    /// The protocol.
    pub protocol: ProtocolSpec,
    /// Parameters the model was solved under.
    pub params: MultiHopParams,
    /// End-to-end inconsistency ratio `I = 1 − π_(K,Fast)` (Equation 12):
    /// the fraction of time at least one hop disagrees with the sender.
    pub inconsistency: f64,
    /// Fraction of time hop `h` (1-indexed; index 0 of the vector is hop 1)
    /// is inconsistent — Figure 17.
    pub per_hop_inconsistency: Vec<f64>,
    /// Message-rate breakdown (hop transmissions per second).
    pub message_rates: MultiHopMessageRates,
    /// Total signaling message rate (Equations 13, 16, 17).
    pub message_rate: f64,
    /// Stationary distribution over the chain's states.
    pub stationary: HashMap<MultiHopState, f64>,
}

impl MultiHopSolution {
    /// Stationary probability of a state (0 when the state does not exist for
    /// this protocol).
    pub fn stationary_probability(&self, state: MultiHopState) -> f64 {
        self.stationary.get(&state).copied().unwrap_or(0.0)
    }

    /// Fraction of time the given hop (1-indexed) is inconsistent.
    pub fn hop_inconsistency(&self, hop: usize) -> f64 {
        if hop == 0 || hop > self.per_hop_inconsistency.len() {
            return 0.0;
        }
        self.per_hop_inconsistency[hop - 1]
    }
}

/// The multi-hop analytic model: one protocol spec + one parameter set.
#[derive(Debug, Clone)]
pub struct MultiHopModel {
    protocol: ProtocolSpec,
    params: MultiHopParams,
}

impl MultiHopModel {
    /// Builds the model, validating the parameters and the protocol's
    /// mechanism composition.  The paper evaluates SS, SS+RT and HS in the
    /// multi-hop setting; the removal-oriented variants (SS+ER, SS+RTR) are
    /// accepted and behave like their base protocol because the multi-hop
    /// model contains no sender-side removal.  Accepts a [`Protocol`] name
    /// or any coherent [`ProtocolSpec`].
    pub fn new(
        protocol: impl Into<ProtocolSpec>,
        params: MultiHopParams,
    ) -> Result<Self, ModelError> {
        let protocol = protocol.into();
        protocol.validate().map_err(ModelError::InvalidSpec)?;
        params.validate().map_err(ModelError::InvalidParams)?;
        Ok(Self { protocol, params })
    }

    /// The protocol being modelled.
    pub fn protocol(&self) -> ProtocolSpec {
        self.protocol
    }

    /// The parameter set.
    pub fn params(&self) -> &MultiHopParams {
        &self.params
    }

    /// Solves the chain and computes every metric.
    pub fn solve(&self) -> Result<MultiHopSolution, ModelError> {
        let k = self.params.hops;
        let with_recovery = self.protocol.has_external_detector();

        let mut builder: CtmcBuilder<MultiHopState> = CtmcBuilder::new();
        for s in MultiHopState::enumerate(k, with_recovery) {
            builder.state(s);
        }
        for e in multi_hop_transitions(self.protocol, &self.params) {
            builder.transition(e.from, e.to, e.rate)?;
        }
        let chain = builder.build()?;
        let pi = chain.stationary_distribution()?;
        Ok(solution_from_stationary(
            self.protocol,
            self.params,
            builder.labels(),
            &pi,
        ))
    }

    /// Expected number of hop transmissions of one end-to-end message
    /// (Equation 14/15 interpretation): a message is transmitted on hop `j`
    /// if it survived hops `1 .. j-1`, so the expectation is
    /// `Σ_{j=1..K} (1−p_l)^(j−1) = (1 − (1−p_l)^K) / p_l` (or `K` when the
    /// channel is loss free).
    pub fn expected_hops_per_message(&self) -> f64 {
        expected_hops_per_message(&self.params)
    }
}

/// [`MultiHopModel::expected_hops_per_message`] as a free function, shared
/// with the sweep fast path.
pub(crate) fn expected_hops_per_message(params: &MultiHopParams) -> f64 {
    let k = params.hops as f64;
    let p = params.loss;
    if p <= 0.0 {
        k
    } else {
        (1.0 - (1.0 - p).powf(k)) / p
    }
}

/// Assembles every solution metric from the chain's stationary distribution
/// (`labels[i]` ↔ `pi[i]`).  Shared verbatim by [`MultiHopModel::solve`] and
/// the sweep fast path ([`crate::sweep::MultiHopSweepSession`]), so both
/// paths produce identical `MultiHopSolution`s.
pub(crate) fn solution_from_stationary(
    protocol: ProtocolSpec,
    params: MultiHopParams,
    labels: &[MultiHopState],
    pi: &[f64],
) -> MultiHopSolution {
    let k = params.hops;
    let mut stationary = HashMap::new();
    for (idx, label) in labels.iter().enumerate() {
        stationary.insert(*label, pi[idx]);
    }

    let fully = MultiHopState::fast(k);
    let inconsistency = 1.0 - stationary.get(&fully).copied().unwrap_or(0.0);

    // Summed in state-index order (not HashMap order), so repeated
    // solves produce bit-identical floating-point results.
    let per_hop_inconsistency = (1..=k)
        .map(|hop| {
            let consistent_mass: f64 = labels
                .iter()
                .zip(pi.iter())
                .filter(|(s, _)| s.hop_is_consistent(hop))
                .map(|(_, p)| *p)
                .sum();
            (1.0 - consistent_mass).clamp(0.0, 1.0)
        })
        .collect();

    let message_rates = message_rates_from(protocol, &params, labels, pi);
    MultiHopSolution {
        protocol,
        params,
        inconsistency: inconsistency.clamp(0.0, 1.0),
        per_hop_inconsistency,
        message_rate: message_rates.total(),
        message_rates,
        stationary,
    }
}

/// Message rates from the stationary distribution (Equations 13, 16, 17;
/// the OCR-damaged sub-terms are documented term by term here).
///
/// Takes the labelled probability vector (`labels[i]` ↔ `pi[i]`) rather
/// than the solution's `HashMap`, so the per-point hot path performs no
/// hashing; the state masses accumulate in label order, which — states being
/// enumerated fast `0..=K`, slow `0..K`, recovery — is exactly the `i` order
/// the historical `HashMap` lookups summed in, keeping every sum
/// bit-identical.
pub(crate) fn message_rates_from(
    protocol: ProtocolSpec,
    p: &MultiHopParams,
    labels: &[MultiHopState],
    pi: &[f64],
) -> MultiHopMessageRates {
    let k = p.hops;
    let success = 1.0 - p.loss;

    let mut fast_mass = 0.0f64;
    let mut slow_mass = 0.0f64;
    let mut recovery_mass = 0.0f64;
    for (s, &prob) in labels.iter().zip(pi.iter()) {
        match s {
            // The fully consistent state (K, Fast) is not "in flight".
            MultiHopState::Progress {
                consistent,
                mode: super::states::PathMode::Fast,
            } if *consistent < k => fast_mass += prob,
            MultiHopState::Progress {
                consistent,
                mode: super::states::PathMode::Slow,
            } if *consistent < k => slow_mass += prob,
            MultiHopState::Recovery => recovery_mass += prob,
            _ => {}
        }
    }

    // A trigger is being transmitted on some hop whenever the chain is in
    // a fast-path state; each such sojourn lasts Δ on average.
    let trigger = fast_mass / p.delay;

    // The sender emits a refresh every T seconds as long as it holds
    // state (always, in this model); each refresh costs
    // `expected_hops_per_message()` hop transmissions.
    let refresh = if protocol.uses_refresh() {
        expected_hops_per_message(p) / p.refresh_timer
    } else {
        0.0
    };

    // Hop-by-hop retransmissions while stuck on the slow path (reliable
    // triggers, or reliable refreshes doing the same repair job).
    let retransmission = if protocol.retransmits_repairs() {
        slow_mass / p.retrans_timer
    } else {
        0.0
    };

    // One hop-by-hop ACK per successfully delivered message of the
    // acknowledged stream: triggers and retransmissions whenever any
    // retransmission machinery exists (trigger ACKs under reliable
    // triggers; the refresh loop acknowledges triggers too when they
    // have no ACKs of their own), plus one ACK per delivered refresh
    // hop under reliable refresh.
    let ack = {
        let mut acked_rate = 0.0;
        if protocol.retransmits_repairs() {
            acked_rate += fast_mass / p.delay + slow_mass / p.retrans_timer;
        }
        if protocol.reliable_refresh() {
            acked_rate += expected_hops_per_message(p) / p.refresh_timer;
        }
        success * acked_rate
    };

    // Recovery traffic: the receiver that saw the false signal notifies
    // the other K−1 receivers and the sender (≈ K messages per recovery).
    let recovery = if protocol.has_external_detector() {
        recovery_mass * (2.0 / (k as f64 * p.delay)) * k as f64
    } else {
        0.0
    };

    MultiHopMessageRates {
        trigger,
        refresh,
        retransmission,
        ack,
        recovery,
    }
}

/// Solves the paper's three multi-hop protocols (SS, SS+RT, HS) under one
/// parameter set.
pub fn solve_all_multi_hop(params: MultiHopParams) -> Result<Vec<MultiHopSolution>, ModelError> {
    Protocol::MULTI_HOP
        .iter()
        .map(|p| MultiHopModel::new(*p, params)?.solve())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(protocol: Protocol) -> MultiHopSolution {
        MultiHopModel::new(protocol, MultiHopParams::reservation_defaults())
            .unwrap()
            .solve()
            .unwrap()
    }

    fn solve_with(protocol: Protocol, params: MultiHopParams) -> MultiHopSolution {
        MultiHopModel::new(protocol, params)
            .unwrap()
            .solve()
            .unwrap()
    }

    #[test]
    fn stationary_distribution_is_a_distribution() {
        for proto in Protocol::MULTI_HOP {
            let s = solve(proto);
            let sum: f64 = s.stationary.values().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{proto}");
            assert!(s.stationary.values().all(|p| *p >= -1e-12));
        }
    }

    #[test]
    fn per_hop_inconsistency_grows_with_hop_index() {
        // Figure 17: nodes farther from the sender are inconsistent a larger
        // fraction of the time, roughly linearly.
        for proto in Protocol::MULTI_HOP {
            let s = solve(proto);
            assert_eq!(s.per_hop_inconsistency.len(), 20);
            for w in s.per_hop_inconsistency.windows(2) {
                assert!(
                    w[1] + 1e-12 >= w[0],
                    "{proto}: per-hop inconsistency must be non-decreasing ({w:?})"
                );
            }
            // Hop 20 is noticeably worse than hop 1.
            assert!(s.per_hop_inconsistency[19] > 2.0 * s.per_hop_inconsistency[0]);
        }
    }

    #[test]
    fn last_hop_inconsistency_equals_end_to_end() {
        // Hop K is consistent only in the fully consistent state, so its
        // inconsistency equals 1 − π_(K,0)... except for slow states with
        // K consistent hops, which do not exist.  The identity is exact.
        for proto in Protocol::MULTI_HOP {
            let s = solve(proto);
            let last = *s.per_hop_inconsistency.last().unwrap();
            assert!((last - s.inconsistency).abs() < 1e-9, "{proto}");
            assert_eq!(s.hop_inconsistency(20), last);
            assert_eq!(s.hop_inconsistency(0), 0.0);
            assert_eq!(s.hop_inconsistency(21), 0.0);
        }
    }

    #[test]
    fn protocol_ordering_matches_figure_17() {
        // SS is the most inconsistent; SS+RT is close to HS; HS is best.
        let ss = solve(Protocol::Ss);
        let ss_rt = solve(Protocol::SsRt);
        let hs = solve(Protocol::Hs);
        assert!(ss.inconsistency > ss_rt.inconsistency);
        assert!(ss_rt.inconsistency >= hs.inconsistency);
        // SS+RT is within a small factor of HS (the paper calls them
        // comparable).
        assert!(ss_rt.inconsistency < 2.0 * hs.inconsistency);
        // And per hop the same ordering holds at the far end.
        assert!(ss.per_hop_inconsistency[19] > ss_rt.per_hop_inconsistency[19]);
        assert!(ss_rt.per_hop_inconsistency[19] >= hs.per_hop_inconsistency[19]);
    }

    #[test]
    fn inconsistency_and_overhead_grow_with_hop_count() {
        // Figure 18: both metrics increase monotonically with K; SS is the
        // most sensitive to the number of hops.
        for proto in Protocol::MULTI_HOP {
            let small = solve_with(proto, MultiHopParams::reservation_defaults().with_hops(2));
            let large = solve_with(proto, MultiHopParams::reservation_defaults().with_hops(20));
            assert!(large.inconsistency > small.inconsistency, "{proto}");
            assert!(large.message_rate > small.message_rate, "{proto}");
        }
        let ss_growth = solve_with(
            Protocol::Ss,
            MultiHopParams::reservation_defaults().with_hops(20),
        )
        .inconsistency
            / solve_with(
                Protocol::Ss,
                MultiHopParams::reservation_defaults().with_hops(2),
            )
            .inconsistency;
        let hs_growth = solve_with(
            Protocol::Hs,
            MultiHopParams::reservation_defaults().with_hops(20),
        )
        .inconsistency
            / solve_with(
                Protocol::Hs,
                MultiHopParams::reservation_defaults().with_hops(2),
            )
            .inconsistency;
        assert!(
            ss_growth > hs_growth,
            "SS ({ss_growth}x) should degrade faster with hops than HS ({hs_growth}x)"
        );
    }

    #[test]
    fn reliable_triggers_add_little_overhead_in_multi_hop() {
        // Figure 18(b): SS+RT ≈ SS in message rate (refreshes dominate),
        // while HS is far cheaper because it has no refreshes.
        let ss = solve(Protocol::Ss);
        let ss_rt = solve(Protocol::SsRt);
        let hs = solve(Protocol::Hs);
        assert!(ss_rt.message_rate < 1.5 * ss.message_rate);
        assert!(hs.message_rate < 0.5 * ss.message_rate);
        assert!(ss.message_rates.refresh > 0.5 * ss.message_rate);
        assert_eq!(hs.message_rates.refresh, 0.0);
    }

    #[test]
    fn expected_hops_per_message() {
        let m = MultiHopModel::new(Protocol::Ss, MultiHopParams::reservation_defaults()).unwrap();
        let e = m.expected_hops_per_message();
        let p = MultiHopParams::reservation_defaults();
        let expected = (1.0 - (1.0 - p.loss).powf(20.0)) / p.loss;
        assert!((e - expected).abs() < 1e-12);
        // Loss-free channel: exactly K hops.
        let mut lossless = MultiHopParams::reservation_defaults();
        lossless.loss = 0.0;
        let m = MultiHopModel::new(Protocol::Ss, lossless).unwrap();
        assert_eq!(m.expected_hops_per_message(), 20.0);
    }

    #[test]
    fn refresh_timer_tradeoff_for_ss() {
        // Figure 19(a): a very small refresh timer hurts SS (state times out
        // against its own refresh traffic? no — tiny T floods but helps);
        // in our model smaller T always repairs faster, so inconsistency
        // decreases, while the message rate explodes (Figure 19(b)).
        let fast = solve_with(
            Protocol::Ss,
            MultiHopParams::reservation_defaults().with_refresh_timer_scaled_timeout(1.0),
        );
        let slow = solve_with(
            Protocol::Ss,
            MultiHopParams::reservation_defaults().with_refresh_timer_scaled_timeout(50.0),
        );
        assert!(fast.inconsistency < slow.inconsistency);
        assert!(fast.message_rate > 10.0 * slow.message_rate);
        // HS ignores the refresh timer.
        let hs_fast = solve_with(
            Protocol::Hs,
            MultiHopParams::reservation_defaults().with_refresh_timer_scaled_timeout(1.0),
        );
        let hs_slow = solve_with(
            Protocol::Hs,
            MultiHopParams::reservation_defaults().with_refresh_timer_scaled_timeout(50.0),
        );
        assert!((hs_fast.inconsistency - hs_slow.inconsistency).abs() < 1e-12);
        assert!((hs_fast.message_rate - hs_slow.message_rate).abs() < 1e-9);
    }

    #[test]
    fn solve_all_returns_three_protocols() {
        let all = solve_all_multi_hop(MultiHopParams::reservation_defaults()).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(
            all.iter().map(|s| s.protocol.label()).collect::<Vec<_>>(),
            vec!["SS", "SS+RT", "HS"]
        );
    }

    #[test]
    fn single_hop_degenerate_case_works() {
        let p = MultiHopParams::reservation_defaults().with_hops(1);
        for proto in Protocol::MULTI_HOP {
            let s = solve_with(proto, p);
            assert_eq!(s.per_hop_inconsistency.len(), 1);
            assert!((0.0..=1.0).contains(&s.inconsistency));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let p = MultiHopParams::reservation_defaults().with_hops(0);
        assert!(MultiHopModel::new(Protocol::Ss, p).is_err());
    }

    #[test]
    fn recovery_state_only_for_hard_state() {
        let hs = solve(Protocol::Hs);
        assert!(hs.stationary.contains_key(&MultiHopState::Recovery));
        let ss = solve(Protocol::Ss);
        assert!(!ss.stationary.contains_key(&MultiHopState::Recovery));
        assert_eq!(ss.stationary_probability(MultiHopState::Recovery), 0.0);
    }
}
