//! `siganalytic` — the paper's analytic models.
//!
//! This crate contains the reproduction's core contribution: the unified
//! parameterized continuous-time Markov chain models of Section III of
//! *"A Comparison of Hard-state and Soft-state Signaling Protocols"*
//! (Ji, Ge, Kurose, Towsley — SIGCOMM 2003), for the five signaling
//! protocols:
//!
//! * **SS** — pure soft state,
//! * **SS+ER** — soft state with best-effort explicit removal,
//! * **SS+RT** — soft state with reliable triggers and removal notification,
//! * **SS+RTR** — soft state with reliable triggers *and* reliable removal,
//! * **HS** — pure hard state.
//!
//! Two models are provided:
//!
//! * [`single_hop`] — the eight-state chain of Figure 3 / Table I, producing
//!   the inconsistency ratio, the expected receiver-side state lifetime, the
//!   per-type signaling message rates (Equations 3–7), the normalized message
//!   rate `M`, and the integrated cost `C = w·I + M` (Equation 8);
//! * [`multi_hop`] — the `(consistent hops, fast/slow path)` chain of
//!   Figures 15–16 for SS, SS+RT and HS, producing the end-to-end
//!   inconsistency ratio, per-hop inconsistency (Figure 17) and the
//!   multi-hop signaling message rate (Equations 13–17).
//!
//! The models sit on top of the [`ctmc`] crate and are deliberately free of
//! any simulation machinery, so they can be cross-validated against the
//! discrete-event simulator in `sigproto` (the workspace integration tests do
//! exactly that, mirroring the paper's Figures 11–12).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod fsm;
pub mod multi_hop;
pub mod params;
pub mod single_hop;
pub mod spec;
pub mod sweep;

pub use cost::{integrated_cost, CostWeights};
pub use fsm::{FsmDispatch, MultiHopTransitionTable, TransitionTable};
pub use multi_hop::{solve_all_multi_hop, MultiHopModel, MultiHopSolution};
pub use params::{ConfigError, MultiHopParams, Protocol, SingleHopParams};
pub use single_hop::{solve_all, MessageRates, ModelError, SingleHopModel, SingleHopSolution};
pub use spec::{Delivery, ProtocolSpec, RefreshMode, Removal, SpecError};
pub use sweep::{MultiHopSweepSession, SingleHopSweepSession};
