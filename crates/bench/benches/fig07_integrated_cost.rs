//! Reproduces Figure 7: integrated cost (w*I + M) versus the refresh timer.
//!
//! Running `cargo bench --bench fig07_integrated_cost` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{integrated_cost, Protocol, SingleHopModel, SingleHopParams};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig7]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig07/integrated_cost_single_point", |b| {
        let params = SingleHopParams::kazaa_defaults().with_refresh_timer_scaled_timeout(5.0);
        b.iter(|| {
            let s = SingleHopModel::new(Protocol::SsEr, black_box(params))
                .unwrap()
                .solve()
                .unwrap();
            black_box(integrated_cost(
                s.inconsistency,
                s.normalized_message_rate,
                10.0,
            ))
        })
    });
    c.final_summary();
}
