//! Reproduces Figure 12: analytic model versus deterministic-timer simulation, sweeping the refresh timer.
//!
//! Running `cargo bench --bench fig12_sim_refresh` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{Campaign, Protocol, SessionConfig, SingleHopParams};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig12a, ExperimentId::Fig12b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig12/campaign_of_ten_sessions", |b| {
        let cfg = SessionConfig::deterministic(
            Protocol::Ss,
            SingleHopParams::kazaa_defaults()
                .with_mean_lifetime(300.0)
                .with_refresh_timer_scaled_timeout(5.0),
        );
        b.iter(|| black_box(Campaign::new(cfg, 10, 1).run()))
    });
    c.final_summary();
}
