//! Reproduces Figure 4: inconsistency ratio and normalized message rate versus the mean state lifetime.
//!
//! Running `cargo bench --bench fig04_lifetime` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{Protocol, SingleHopModel, SingleHopParams};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig4a, ExperimentId::Fig4b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig04/solve_all_protocols_one_lifetime", |b| {
        let params = SingleHopParams::kazaa_defaults().with_mean_lifetime(300.0);
        b.iter(|| {
            for protocol in Protocol::ALL {
                let s = SingleHopModel::new(protocol, black_box(params))
                    .unwrap()
                    .solve()
                    .unwrap();
                black_box(s.inconsistency);
            }
        })
    });
    c.bench_function("fig04/full_lifetime_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig4a.run()))
    });
    c.final_summary();
}
