//! Reproduces Figure 10: the overhead/inconsistency tradeoff under varying update rate and channel delay.
//!
//! Running `cargo bench --bench fig10_tradeoff_update_delay` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig10a, ExperimentId::Fig10b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig10/tradeoff_sweeps", |b| {
        b.iter(|| {
            black_box(ExperimentId::Fig10a.run());
            black_box(ExperimentId::Fig10b.run());
        })
    });
    c.final_summary();
}
