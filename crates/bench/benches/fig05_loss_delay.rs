//! Reproduces Figure 5: inconsistency versus channel loss rate and channel delay.
//!
//! Running `cargo bench --bench fig05_loss_delay` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{Protocol, SingleHopModel, SingleHopParams};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig5a, ExperimentId::Fig5b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig05/solve_at_high_loss", |b| {
        let mut params = SingleHopParams::kazaa_defaults();
        params.loss = 0.25;
        b.iter(|| {
            for protocol in Protocol::ALL {
                black_box(
                    SingleHopModel::new(protocol, black_box(params))
                        .unwrap()
                        .solve()
                        .unwrap()
                        .inconsistency,
                );
            }
        })
    });
    c.final_summary();
}
