//! Reproduces Figure 19: multi-hop inconsistency and message rate versus the refresh timer.
//!
//! Running `cargo bench --bench fig19_multihop_refresh` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig19a, ExperimentId::Fig19b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig19/refresh_timer_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig19a.run()))
    });
    c.final_summary();
}
