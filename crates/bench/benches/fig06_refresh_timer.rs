//! Reproduces Figure 6: inconsistency and message rate versus the soft-state refresh timer.
//!
//! Running `cargo bench --bench fig06_refresh_timer` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig6a, ExperimentId::Fig6b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig06/refresh_timer_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig6a.run()))
    });
    c.final_summary();
}
