//! Reproduces Figure 17: fraction of time the i-th hop is inconsistent along a 20-hop path.
//!
//! Running `cargo bench --bench fig17_per_hop` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{MultiHopModel, MultiHopParams, Protocol};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig17]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig17/solve_20_hop_chain", |b| {
        let params = MultiHopParams::reservation_defaults();
        b.iter(|| {
            for protocol in Protocol::MULTI_HOP {
                black_box(
                    MultiHopModel::new(protocol, black_box(params))
                        .unwrap()
                        .solve()
                        .unwrap()
                        .inconsistency,
                );
            }
        })
    });
    c.final_summary();
}
