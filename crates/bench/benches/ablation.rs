//! Ablation study: which individual mechanism buys how much?
//!
//! The paper's conclusion is that *explicit removal* is the mechanism that
//! buys the most consistency for the least overhead, with reliable
//! triggers/removal closing the remaining gap to hard state.  This bench
//! makes that concrete by toggling one mechanism at a time along the
//! SS → SS+ER → SS+RTR spectrum and along SS → SS+RT, at the Kazaa defaults
//! and at a short-session / lossy operating point, and by sweeping the
//! timeout-to-refresh ratio the paper discusses around Figure 8(a).

use criterion::{black_box, Criterion};
use signaling::{Campaign, Protocol, SessionConfig, SingleHopModel, SingleHopParams};
use signet::LossModel;

fn solve(protocol: Protocol, params: SingleHopParams) -> (f64, f64) {
    let s = SingleHopModel::new(protocol, params)
        .expect("valid params")
        .solve()
        .expect("solvable");
    (s.inconsistency, s.normalized_message_rate)
}

fn print_mechanism_ablation(label: &str, params: SingleHopParams) {
    println!("== Ablation: mechanism contributions ({label}) ==");
    println!(
        "{:<44} {:>14} {:>14}",
        "configuration", "inconsistency", "msg rate M"
    );
    let steps: [(&str, Protocol); 5] = [
        ("baseline: pure soft state (SS)", Protocol::Ss),
        ("+ explicit removal (SS+ER)", Protocol::SsEr),
        ("+ reliable triggers only (SS+RT)", Protocol::SsRt),
        ("+ reliable trigger & removal (SS+RTR)", Protocol::SsRtr),
        ("hard state, no refresh/timeout (HS)", Protocol::Hs),
    ];
    let (base_i, base_m) = solve(Protocol::Ss, params);
    for (name, protocol) in steps {
        let (i, m) = solve(protocol, params);
        println!(
            "{:<44} {:>14.6} {:>14.6}   (I x{:.2}, M x{:.2} vs SS)",
            name,
            i,
            m,
            i / base_i,
            m / base_m
        );
    }
    println!();
}

fn print_timeout_ratio_ablation() {
    println!("== Ablation: state-timeout / refresh-timer ratio (T = 5 s) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "tau/T", "SS", "SS+ER", "SS+RT", "SS+RTR"
    );
    for ratio in [1.0f64, 1.5, 2.0, 3.0, 5.0, 10.0] {
        let mut params = SingleHopParams::kazaa_defaults();
        params.timeout_timer = ratio * params.refresh_timer;
        let row: Vec<f64> = [
            Protocol::Ss,
            Protocol::SsEr,
            Protocol::SsRt,
            Protocol::SsRtr,
        ]
        .iter()
        .map(|p| solve(*p, params).0)
        .collect();
        println!(
            "{:<10} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            ratio, row[0], row[1], row[2], row[3]
        );
    }
    println!();
}

fn print_burst_loss_ablation() {
    // Same 20% mean loss, delivered either independently or in Gilbert-
    // Elliott bursts (mean burst ≈ 6-7 packets at 80% in-burst loss).
    // Simulated with deterministic timers, 120 sessions per cell.
    println!("== Ablation: independent vs bursty loss (mean loss 20%) ==");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "protocol", "I (independent)", "I (bursty)", "ratio"
    );
    let mut params = SingleHopParams::kazaa_defaults().with_mean_lifetime(600.0);
    params.loss = 0.2;
    let bursty_model = LossModel::GilbertElliott {
        p_good: 0.0,
        p_bad: 0.8,
        p_g2b: 0.05,
        p_b2g: 0.15,
    };
    for protocol in Protocol::ALL {
        let independent = Campaign::new(SessionConfig::deterministic(protocol, params), 120, 7)
            .parallel(true)
            .run()
            .inconsistency
            .mean;
        let bursty = Campaign::new(
            SessionConfig::deterministic(protocol, params).with_loss_model(bursty_model),
            120,
            7,
        )
        .parallel(true)
        .run()
        .inconsistency
        .mean;
        println!(
            "{:<8} {:>16.5} {:>16.5} {:>10.2}",
            protocol.label(),
            independent,
            bursty,
            bursty / independent.max(1e-12)
        );
    }
    println!();
}

fn main() {
    print_mechanism_ablation(
        "Kazaa defaults, 1800 s sessions",
        SingleHopParams::kazaa_defaults(),
    );
    print_mechanism_ablation("short sessions (120 s), 10% loss", {
        let mut p = SingleHopParams::kazaa_defaults().with_mean_lifetime(120.0);
        p.loss = 0.10;
        p
    });
    print_timeout_ratio_ablation();
    print_burst_loss_ablation();

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("ablation/mechanism_table", |b| {
        let params = SingleHopParams::kazaa_defaults();
        b.iter(|| {
            for protocol in Protocol::ALL {
                black_box(solve(protocol, black_box(params)));
            }
        })
    });
    c.final_summary();
}
