//! Ablation study: which individual mechanism buys how much?
//!
//! The paper's conclusion is that *explicit removal* is the mechanism that
//! buys the most consistency for the least overhead, with reliable
//! triggers/removal closing the remaining gap to hard state.  This bench
//! makes that concrete by toggling one mechanism at a time along the
//! SS → SS+ER → SS+RTR spectrum and along SS → SS+RT, at the Kazaa defaults
//! and at a short-session / lossy operating point, and by sweeping the
//! timeout-to-refresh ratio the paper discusses around Figure 8(a).

use criterion::{black_box, Criterion};
use siganalytic::single_hop::transitions::{protocol_transitions, RateEntry, RateTable};
use siganalytic::single_hop::SingleHopState;
use signaling::{Campaign, Protocol, SessionConfig, SingleHopModel, SingleHopParams};
use signet::LossModel;

fn solve(protocol: Protocol, params: SingleHopParams) -> (f64, f64) {
    let s = SingleHopModel::new(protocol, params)
        .expect("valid params")
        .solve()
        .expect("solvable");
    (s.inconsistency, s.normalized_message_rate)
}

fn print_mechanism_ablation(label: &str, params: SingleHopParams) {
    println!("== Ablation: mechanism contributions ({label}) ==");
    println!(
        "{:<44} {:>14} {:>14}",
        "configuration", "inconsistency", "msg rate M"
    );
    let steps: [(&str, Protocol); 5] = [
        ("baseline: pure soft state (SS)", Protocol::Ss),
        ("+ explicit removal (SS+ER)", Protocol::SsEr),
        ("+ reliable triggers only (SS+RT)", Protocol::SsRt),
        ("+ reliable trigger & removal (SS+RTR)", Protocol::SsRtr),
        ("hard state, no refresh/timeout (HS)", Protocol::Hs),
    ];
    let (base_i, base_m) = solve(Protocol::Ss, params);
    for (name, protocol) in steps {
        let (i, m) = solve(protocol, params);
        println!(
            "{:<44} {:>14.6} {:>14.6}   (I x{:.2}, M x{:.2} vs SS)",
            name,
            i,
            m,
            i / base_i,
            m / base_m
        );
    }
    println!();
}

fn print_timeout_ratio_ablation() {
    println!("== Ablation: state-timeout / refresh-timer ratio (T = 5 s) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "tau/T", "SS", "SS+ER", "SS+RT", "SS+RTR"
    );
    for ratio in [1.0f64, 1.5, 2.0, 3.0, 5.0, 10.0] {
        let mut params = SingleHopParams::kazaa_defaults();
        params.timeout_timer = ratio * params.refresh_timer;
        let row: Vec<f64> = [
            Protocol::Ss,
            Protocol::SsEr,
            Protocol::SsRt,
            Protocol::SsRtr,
        ]
        .iter()
        .map(|p| solve(*p, params).0)
        .collect();
        println!(
            "{:<10} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            ratio, row[0], row[1], row[2], row[3]
        );
    }
    println!();
}

fn print_burst_loss_ablation() {
    // Same 20% mean loss, delivered either independently or in Gilbert-
    // Elliott bursts (mean burst ≈ 6-7 packets at 80% in-burst loss).
    // Simulated with deterministic timers, 120 sessions per cell.
    println!("== Ablation: independent vs bursty loss (mean loss 20%) ==");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "protocol", "I (independent)", "I (bursty)", "ratio"
    );
    let mut params = SingleHopParams::kazaa_defaults().with_mean_lifetime(600.0);
    params.loss = 0.2;
    let bursty_model = LossModel::GilbertElliott {
        p_good: 0.0,
        p_bad: 0.8,
        p_g2b: 0.05,
        p_b2g: 0.15,
    };
    for protocol in Protocol::ALL {
        let independent = Campaign::new(SessionConfig::deterministic(protocol, params), 120, 7)
            .parallel(true)
            .run()
            .inconsistency
            .mean;
        let bursty = Campaign::new(
            SessionConfig::deterministic(protocol, params).with_loss_model(bursty_model),
            120,
            7,
        )
        .parallel(true)
        .run()
        .inconsistency
        .mean;
        println!(
            "{:<8} {:>16.5} {:>16.5} {:>10.2}",
            protocol.label(),
            independent,
            bursty,
            bursty / independent.max(1e-12)
        );
    }
    println!();
}

/// The pre-redesign transition builder: one `match` arm per protocol,
/// transcribed from the closed-enum implementation this bench compares the
/// mechanism-driven dispatch against.  Kept here (not in the library) so the
/// spec-dispatch ablation has a faithful baseline to race and to
/// equality-check.
fn enum_match_transitions(protocol: Protocol, p: &SingleHopParams) -> RateTable {
    use SingleHopState::*;
    let mut entries: Vec<RateEntry> = Vec::new();
    let mut push = |from: SingleHopState, to: SingleHopState, rate: f64| {
        if rate > 0.0 {
            entries.push(RateEntry { from, to, rate });
        }
    };

    let success = 1.0 - p.loss;
    let fast_delivery = success / p.delay;
    let fast_loss = p.loss / p.delay;
    let slow_repair = match protocol {
        Protocol::Ss | Protocol::SsEr => success / p.refresh_timer,
        Protocol::SsRt | Protocol::SsRtr => {
            (1.0 / p.refresh_timer + 1.0 / p.retrans_timer) * success
        }
        Protocol::Hs => success / p.retrans_timer,
    };
    let lambda_f = match protocol {
        Protocol::Hs => p.false_signal_rate,
        _ => p.false_removal_rate(),
    };

    push(Setup1, Consistent, fast_delivery);
    push(Setup1, Setup2, fast_loss);
    push(Diff1, Consistent, fast_delivery);
    push(Diff1, Diff2, fast_loss);
    push(Setup2, Consistent, slow_repair);
    push(Diff2, Consistent, slow_repair);
    push(Consistent, Diff1, p.update_rate);
    push(Setup2, Setup1, p.update_rate);
    push(Diff2, Diff1, p.update_rate);
    push(Setup2, Absorbed, p.removal_rate);
    push(Consistent, Removing1, p.removal_rate);
    push(Diff2, Removing1, p.removal_rate);
    push(Consistent, Setup2, lambda_f);
    push(Diff2, Setup2, lambda_f);

    let removal_delivery = match protocol {
        Protocol::SsEr | Protocol::SsRtr | Protocol::Hs => success / p.delay,
        Protocol::Ss | Protocol::SsRt => 1.0 / p.timeout_timer,
    };
    push(Removing1, Absorbed, removal_delivery);
    match protocol {
        Protocol::Ss | Protocol::SsRt => {}
        Protocol::SsEr => {
            push(Removing1, Removing2, fast_loss);
            push(Removing2, Absorbed, 1.0 / p.timeout_timer);
        }
        Protocol::SsRtr => {
            push(Removing1, Removing2, fast_loss);
            push(
                Removing2,
                Absorbed,
                1.0 / p.timeout_timer + success / p.retrans_timer,
            );
        }
        Protocol::Hs => {
            push(Removing1, Removing2, fast_loss);
            push(Removing2, Absorbed, success / p.retrans_timer);
        }
    }

    RateTable {
        protocol: protocol.spec(),
        entries,
    }
}

fn print_spec_dispatch_ablation(params: &SingleHopParams) {
    println!("== Ablation: enum-match vs mechanism-derived transition dispatch ==");
    // The two dispatch styles must agree bit for bit on every preset before
    // their timing comparison means anything.
    for protocol in Protocol::ALL {
        let via_enum = enum_match_transitions(protocol, params);
        let via_spec = protocol_transitions(protocol, params);
        assert_eq!(
            via_enum, via_spec,
            "{protocol}: spec-derived table diverged from the enum baseline"
        );
    }
    println!("   all 5 preset transition tables bit-identical across dispatch styles\n");
}

fn main() {
    print_mechanism_ablation(
        "Kazaa defaults, 1800 s sessions",
        SingleHopParams::kazaa_defaults(),
    );
    print_mechanism_ablation("short sessions (120 s), 10% loss", {
        let mut p = SingleHopParams::kazaa_defaults().with_mean_lifetime(120.0);
        p.loss = 0.10;
        p
    });
    print_timeout_ratio_ablation();
    print_burst_loss_ablation();
    let params = SingleHopParams::kazaa_defaults();
    print_spec_dispatch_ablation(&params);

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("ablation/mechanism_table", |b| {
        b.iter(|| {
            for protocol in Protocol::ALL {
                black_box(solve(protocol, black_box(params)));
            }
        })
    });
    // Spec-dispatch ablation: building all five presets' transition tables
    // through the closed-enum match vs. the mechanism-composition path
    // (which also pays the Protocol → ProtocolSpec conversion), so the
    // BENCH_COMPARE_DIR gate catches regressions in protocol dispatch.
    c.bench_function("ablation/dispatch/enum_match", |b| {
        b.iter(|| {
            for protocol in Protocol::ALL {
                black_box(enum_match_transitions(protocol, black_box(&params)));
            }
        })
    });
    c.bench_function("ablation/dispatch/mechanism_spec", |b| {
        b.iter(|| {
            for protocol in Protocol::ALL {
                black_box(protocol_transitions(protocol, black_box(&params)));
            }
        })
    });
    c.final_summary();
}
