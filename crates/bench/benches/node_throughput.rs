//! `node_throughput` — the repo's headline speed number: events/sec through
//! a population-scale [`NodeSim`](signaling::NodeSim) at N ∈ {10⁴, 10⁵,
//! 10⁶} concurrent sessions, for both event-queue cores.
//!
//! Each combination builds one node running pure soft state (SS — the
//! densest periodic-timer mix: refresh every `T`, a state timeout per held
//! session, plus churn), warms it past the initial arrival wave into the
//! stationary regime, and then measures `step_events` batches.  The bench
//! prints, per combination:
//!
//! * the measured **events/sec** (the headline, from one continuous
//!   wall-clock measurement outside the criterion loop), and
//! * the measured **bytes/session** (shared event queue + session slab),
//!
//! and records the per-batch timing through the criterion harness so
//! `BENCH_BASELINE_DIR` / `BENCH_COMPARE_DIR` gate regressions like every
//! other bench.  The simulation is deterministic, so both cores process the
//! byte-identical event sequence — the timing difference is purely the
//! ordering core.

// The headline events/sec number is a wall-clock measurement by definition.
#![allow(clippy::disallowed_methods)]

use criterion::{black_box, Criterion};
use signaling::{NodeConfig, NodeSim, Protocol, QueueKind, SingleHopParams};
use std::time::Instant;

/// Concurrent-session populations (the 10⁶ row is the headline).
const SIZES: &[usize] = &[10_000, 100_000, 1_000_000];

/// Both ordering cores, head to head on identical event sequences.
const KINDS: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

/// Events per measured batch: large enough to amortize loop overhead, small
/// enough that criterion gets many samples per measurement window.
const BATCH: u64 = 4096;

/// Builds a warmed node at population `n`: every session has arrived and the
/// queue sits at its stationary backlog.
fn warmed_node(n: usize, kind: QueueKind) -> NodeSim {
    // Kazaa parameters with a ten-minute lifetime: the stationary mix is
    // dominated by refresh and timeout timers with steady churn underneath.
    let params = SingleHopParams::kazaa_defaults().with_mean_lifetime(600.0);
    let cfg = NodeConfig::new(Protocol::Ss, params, n).with_queue_kind(kind);
    let mut sim = NodeSim::new(cfg, 0x90de);
    // Processing 4n events takes the node through the arrival wave (one
    // arrival, trigger delivery, refresh arm and timeout arm per session)
    // into the periodic steady state.
    sim.step_events(4 * n as u64);
    sim
}

fn main() {
    let mut c = Criterion::default().configure_from_args();

    for kind in KINDS {
        for &n in SIZES {
            let mut sim = warmed_node(n, kind);

            // Headline measurement: one continuous run, long enough to
            // cycle the whole backlog several times at 10⁶ sessions.
            let measure = (8 * n as u64).max(2_000_000);
            let start = Instant::now();
            let processed = sim.step_events(measure);
            let elapsed = start.elapsed().as_secs_f64();
            println!(
                "node_throughput/{kind}/{n}: {:.3e} events/sec   ({processed} events in \
                 {elapsed:.2} s, {:.1} bytes/session, {} pending)",
                processed as f64 / elapsed,
                sim.bytes_per_session(),
                sim.pending_events(),
            );

            c.bench_function(&format!("node_throughput/{kind}/{n}"), |b| {
                b.iter(|| black_box(sim.step_events(BATCH)))
            });
        }
    }

    c.final_summary();
}
