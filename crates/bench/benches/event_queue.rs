//! Microbenchmarks of the `simcore` future event list — the hottest data
//! structure in the repo (every simulated session pops its events through
//! it, and the fig11/fig12 sweeps pop millions per campaign) — measured
//! head-to-head for both ordering cores ([`QueueKind::Heap`] vs
//! [`QueueKind::Calendar`]).
//!
//! Two mixes, each at several backlog sizes, both *stationary* (the backlog
//! holds exactly `n` keys in steady state, so per-iteration cost does not
//! drift with the iteration count):
//!
//! * **cancel-heavy** — the protocols' timer-restart pattern: with `n`
//!   events pending, each iteration schedules a short-delay event (a
//!   retransmission timer), immediately cancels it, and peeks — which
//!   reclaims the cancelled event's key from the front, keeping the
//!   structure at `n (+1)` keys.  No payload is ever delivered: this
//!   isolates schedule/cancel/reclaim.
//! * **pop-heavy** — event delivery: with `n` events pending, each
//!   iteration pops the earliest event and schedules a replacement, keeping
//!   the backlog constant (the classic "hold" model of event-list papers).
//!   This is where the heap pays O(log n) sifts through cache-cold levels
//!   and the calendar stays O(1); the crossover is documented in
//!   `docs/perf.md`.
//!
//! Run with `BENCH_BASELINE_DIR=dir` to record timings, and with
//! `BENCH_COMPARE_DIR=bench-baselines [BENCH_COMPARE_TOLERANCE=x]` to diff a
//! fresh run against committed baselines (non-zero exit on regression).

use criterion::{black_box, Criterion};
use simcore::{EventQueue, QueueKind, SimRng};

/// Pending-event backlog sizes for each mix (the paper's campaigns sit in
/// the small end; the population-scale node simulation stresses the large
/// end).
const SIZES: &[usize] = &[10_000, 100_000, 1_000_000];

/// Both ordering cores, benched under identical mixes.
const KINDS: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

/// Builds a queue holding `n` pending events at pseudo-random future times.
fn filled_queue(n: usize, kind: QueueKind) -> EventQueue<u64> {
    let mut rng = SimRng::new(0x5eed);
    let mut q = EventQueue::with_kind(kind);
    for i in 0..n {
        q.schedule_in(1.0 + 1000.0 * rng.uniform(), i as u64);
    }
    q
}

fn main() {
    let mut c = Criterion::default().configure_from_args();

    for kind in KINDS {
        for &n in SIZES {
            c.bench_function(&format!("event_queue/cancel_heavy/{kind}/{n}"), |b| {
                let mut q = filled_queue(n, kind);
                b.iter(|| {
                    // A short-delay expiry — the retransmission-timer
                    // pattern: armed ahead of everything pending, cancelled
                    // before it fires.  The key surfaces at the front, so
                    // the peek reclaims it immediately and the backlog
                    // stays at exactly n (+1) keys.
                    let id = q.schedule_in(1e-9, 0);
                    let cancelled = q.cancel(black_box(id));
                    black_box((cancelled, q.peek_time()))
                })
            });
        }
    }

    for kind in KINDS {
        for &n in SIZES {
            c.bench_function(&format!("event_queue/pop_heavy/{kind}/{n}"), |b| {
                let mut q = filled_queue(n, kind);
                let mut rng = SimRng::new(43);
                b.iter(|| {
                    let e = q.pop().expect("backlog never drains");
                    q.schedule_in(1.0 + 1000.0 * rng.uniform(), e.event);
                    black_box(e.time)
                })
            });
        }
    }

    c.final_summary();
}
