//! The analytic sweep fast path: rebuild-per-point vs `SweepSession`.
//!
//! Every analytic figure solves hundreds of `(ProtocolSpec, params)` CTMC
//! points.  The historical path rebuilds the chain from scratch each time
//! (two `CtmcBuilder`s + `HashMap`s, generator clone, transpose, submatrix,
//! fresh elimination working copy); the `SweepSession` path keeps matrices,
//! LU workspace and state maps alive and mutates rate entries in place.
//!
//! The two paths are **equality-checked** below before any timing: the
//! session is not approximately right, it is bit-identical — which is what
//! lets the experiment layer route every analytic sweep through it while
//! keeping all figures byte-identical.
//!
//! The four benchmarks time one full sweep per iteration:
//!
//! * `analytic_sweep/single_hop/*` — the paper's five protocols × the
//!   16-point session-length grid of Figure 4 (8-state chains);
//! * `analytic_sweep/multi_hop/*` — the multi-hop trio × Figure 18's
//!   hop-count grid K = 1..20 (chains of 3 to 42 states; at the large-K end
//!   the dense `O(n³)` factorization itself — identical in both paths —
//!   dominates, so the multi-hop ratio is structurally smaller than the
//!   single-hop one).

use criterion::{black_box, Criterion};
use signaling::{
    MultiHopModel, MultiHopParams, MultiHopSolution, MultiHopSweepSession, ProtocolSpec,
    SingleHopModel, SingleHopParams, SingleHopSolution, SingleHopSweepSession, Sweep,
};

fn single_hop_jobs() -> Vec<(ProtocolSpec, SingleHopParams)> {
    ProtocolSpec::PAPER
        .iter()
        .flat_map(|&p| {
            Sweep::session_length()
                .values
                .into_iter()
                .map(move |lifetime| {
                    (
                        p,
                        SingleHopParams::kazaa_defaults().with_mean_lifetime(lifetime),
                    )
                })
        })
        .collect()
}

fn multi_hop_jobs() -> Vec<(ProtocolSpec, MultiHopParams)> {
    ProtocolSpec::PAPER_MULTI_HOP
        .iter()
        .flat_map(|&p| {
            Sweep::hop_count().values.into_iter().map(move |k| {
                (
                    p,
                    MultiHopParams::reservation_defaults().with_hops(k as usize),
                )
            })
        })
        .collect()
}

fn rebuild_single_hop(jobs: &[(ProtocolSpec, SingleHopParams)]) -> Vec<SingleHopSolution> {
    jobs.iter()
        .map(|&(protocol, params)| {
            SingleHopModel::new(protocol, params)
                .expect("valid job")
                .solve()
                .expect("solvable chain")
        })
        .collect()
}

fn rebuild_multi_hop(jobs: &[(ProtocolSpec, MultiHopParams)]) -> Vec<MultiHopSolution> {
    jobs.iter()
        .map(|&(protocol, params)| {
            MultiHopModel::new(protocol, params)
                .expect("valid job")
                .solve()
                .expect("solvable chain")
        })
        .collect()
}

fn main() {
    let single_jobs = single_hop_jobs();
    let multi_jobs = multi_hop_jobs();

    // The timing comparison is meaningless unless the two paths agree — and
    // they must agree *exactly*, not within a tolerance.
    let single_rebuilt = rebuild_single_hop(&single_jobs);
    let mut session = SingleHopSweepSession::new();
    let single_session = session.solve_sweep(&single_jobs).expect("sweep solves");
    assert_eq!(
        single_rebuilt, single_session,
        "single-hop SweepSession diverged from the rebuild-per-point path"
    );
    let multi_rebuilt = rebuild_multi_hop(&multi_jobs);
    let mut msession = MultiHopSweepSession::new();
    let multi_session = msession.solve_sweep(&multi_jobs).expect("sweep solves");
    assert_eq!(
        multi_rebuilt, multi_session,
        "multi-hop SweepSession diverged from the rebuild-per-point path"
    );
    println!(
        "analytic_sweep: both paths bit-identical on {} single-hop + {} multi-hop points\n",
        single_jobs.len(),
        multi_jobs.len()
    );

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("analytic_sweep/single_hop/rebuild", |b| {
        b.iter(|| black_box(rebuild_single_hop(black_box(&single_jobs))))
    });
    c.bench_function("analytic_sweep/single_hop/session", |b| {
        let mut session = SingleHopSweepSession::new();
        b.iter(|| black_box(session.solve_sweep(black_box(&single_jobs)).unwrap()))
    });
    c.bench_function("analytic_sweep/multi_hop/rebuild", |b| {
        b.iter(|| black_box(rebuild_multi_hop(black_box(&multi_jobs))))
    });
    c.bench_function("analytic_sweep/multi_hop/session", |b| {
        let mut session = MultiHopSweepSession::new();
        b.iter(|| black_box(session.solve_sweep(black_box(&multi_jobs)).unwrap()))
    });

    // Speedup summary straight from the measurements, so the bench log reads
    // as the before/after table.
    let mean = |name: &str| {
        c.results()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.mean_ns)
    };
    for chain in ["single_hop", "multi_hop"] {
        if let (Some(old), Some(new)) = (
            mean(&format!("analytic_sweep/{chain}/rebuild")),
            mean(&format!("analytic_sweep/{chain}/session")),
        ) {
            println!(
                "analytic_sweep: {chain} sweep session speedup {:.2}x (rebuild {:.1} µs -> session {:.1} µs per sweep)",
                old / new,
                old / 1e3,
                new / 1e3,
            );
        }
    }
    c.final_summary();
}
