//! Reproduces Figure 9: message overhead versus inconsistency, tracing out the refresh-timer tradeoff.
//!
//! Running `cargo bench --bench fig09_tradeoff_refresh` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig9]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig09/tradeoff_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig9.run()))
    });
    c.final_summary();
}
