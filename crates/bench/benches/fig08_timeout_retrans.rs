//! Reproduces Figure 8: inconsistency versus the state-timeout timer and the retransmission timer.
//!
//! Running `cargo bench --bench fig08_timeout_retrans` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig8a, ExperimentId::Fig8b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig08/timeout_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig8a.run()))
    });
    c.bench_function("fig08/retrans_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig8b.run()))
    });
    c.final_summary();
}
