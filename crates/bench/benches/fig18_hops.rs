//! Reproduces Figure 18: end-to-end inconsistency and message rate versus the number of hops.
//!
//! Running `cargo bench --bench fig18_hops` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig18a, ExperimentId::Fig18b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig18/hop_count_sweep", |b| {
        b.iter(|| black_box(ExperimentId::Fig18a.run()))
    });
    c.final_summary();
}
