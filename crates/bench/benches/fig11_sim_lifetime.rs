//! Reproduces Figure 11: analytic model (exponential timers) versus deterministic-timer simulation, sweeping the state lifetime.
//!
//! Running `cargo bench --bench fig11_sim_lifetime` first prints the regenerated data
//! series (the reproduction itself), then times the computation behind it
//! with Criterion.

use criterion::{black_box, Criterion};
use signaling::experiment::ExperimentId;
use signaling::{Protocol, SessionConfig, SimRng, SingleHopParams, SingleHopSession};

fn main() {
    // Reproduction: print the regenerated series.
    sigbench::print_experiments(&[ExperimentId::Fig11a, ExperimentId::Fig11b]);

    // Benchmark: time the computation behind the figure.
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("fig11/single_simulated_session", |b| {
        let cfg = SessionConfig::deterministic(
            Protocol::SsEr,
            SingleHopParams::kazaa_defaults().with_mean_lifetime(300.0),
        );
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(SingleHopSession::run(&cfg, &mut rng))
        })
    });
    c.final_summary();
}
