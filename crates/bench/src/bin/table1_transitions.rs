//! `table1_transitions` — print Table I (the protocol-specific transition
//! rates of the unified single-hop Markov model), both symbolically and
//! evaluated at the paper's default parameters.

use signaling::experiment::ExperimentId;
use signaling::{Protocol, SingleHopParams};

fn main() {
    // Symbolic form (as printed in the paper).
    println!("Symbolic Table I (rates per protocol)\n");
    println!(
        "{:<28} {:<14} {:<14} {:<22} {:<22} {:<14}",
        "transition", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"
    );
    let rows = [
        (
            "(1,0)1->(1,0)2, IC1->IC2",
            "p/D",
            "p/D",
            "p/D",
            "p/D",
            "p/D",
        ),
        (
            "(1,0)1->C, IC1->C",
            "(1-p)/D",
            "(1-p)/D",
            "(1-p)/D",
            "(1-p)/D",
            "(1-p)/D",
        ),
        (
            "(1,0)2->C, IC2->C",
            "(1-p)/T",
            "(1-p)/T",
            "(1/T+1/R)(1-p)",
            "(1/T+1/R)(1-p)",
            "(1-p)/R",
        ),
        ("(0,1)1->(0,1)2", "-", "p/D", "-", "p/D", "p/D"),
        (
            "(0,1)1->(0,0)",
            "1/tau",
            "(1-p)/D",
            "1/tau",
            "(1-p)/D",
            "(1-p)/D",
        ),
        (
            "(0,1)2->(0,0)",
            "-",
            "1/tau",
            "-",
            "1/tau+(1-p)/R",
            "(1-p)/R",
        ),
        (
            "false removal rate",
            "p^(tau/T)/tau",
            "p^(tau/T)/tau",
            "p^(tau/T)/tau",
            "p^(tau/T)/tau",
            "lambda_e",
        ),
    ];
    for (name, ss, sser, ssrt, ssrtr, hs) in rows {
        println!("{name:<28} {ss:<14} {sser:<14} {ssrt:<22} {ssrtr:<22} {hs:<14}");
    }
    println!(
        "\n(p = p_l, D = Delta; common transitions at lambda_u, lambda_r, lambda_f per Figure 3)\n"
    );

    // Numeric form from the model itself.
    println!("{}", ExperimentId::Table1.run().to_text());

    // A small sanity print of the resulting metrics at the defaults.
    println!("Metrics at the Kazaa defaults:");
    let params = SingleHopParams::kazaa_defaults();
    for protocol in Protocol::ALL {
        let s = signaling::SingleHopModel::new(protocol, params)
            .expect("valid params")
            .solve()
            .expect("solvable");
        println!(
            "  {:<7} I = {:.6}   M = {:.6}   C(w=10) = {:.6}",
            protocol.label(),
            s.inconsistency,
            s.normalized_message_rate,
            s.integrated_cost(10.0)
        );
    }
}
