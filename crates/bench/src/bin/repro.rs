//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro                 # regenerate everything with default options
//! repro --quick         # smaller simulation campaigns
//! repro --fig fig4a     # one experiment only (repeat --fig for several)
//! repro --csv DIR       # additionally write one CSV file per figure to DIR
//! repro --list          # list the available experiment ids
//! repro --serial        # disable the multi-core sweep fan-out
//! repro --jobs N        # fan simulation sweeps out across N threads
//! ```
//!
//! Simulation experiments (Figures 11–12) fan their sweeps out across all
//! CPUs by default; `--serial` / `--jobs` control the `ExecutionPolicy` and
//! the closing line reports the wall-clock, so a serial-vs-parallel speedup
//! is one `time`-free A/B away.

use signaling::experiment::{ExperimentId, ExperimentOptions, ExperimentOutput};
use signaling::report::render_csv;
use signaling::ExecutionPolicy;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    quick: bool,
    figs: Vec<ExperimentId>,
    csv_dir: Option<PathBuf>,
    list: bool,
    execution: ExecutionPolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        figs: Vec::new(),
        csv_dir: None,
        list: false,
        execution: ExecutionPolicy::auto(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--serial" => args.execution = ExecutionPolicy::Serial,
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs needs an integer, got '{n}'"))?;
                args.execution = ExecutionPolicy::threads(n);
            }
            "--fig" => {
                let name = it.next().ok_or("--fig needs an experiment id")?;
                let id = ExperimentId::parse(&name)
                    .ok_or_else(|| format!("unknown experiment id '{name}' (try --list)"))?;
                args.figs.push(id);
            }
            "--csv" => {
                let dir = it.next().ok_or("--csv needs a directory")?;
                args.csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--fig ID]... [--csv DIR] [--list] [--serial | --jobs N]\n\
                     Regenerates the paper's tables and figures."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if args.list {
        for id in ExperimentId::ALL {
            println!("{:<8} {}", id.name(), id.description());
        }
        return;
    }

    let options = if args.quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    }
    .with_execution(args.execution);
    let ids: Vec<ExperimentId> = if args.figs.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        args.figs.clone()
    };

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let start = Instant::now();
    for id in &ids {
        // Run each experiment once and derive both renderings from it (the
        // simulation experiments are far too expensive to run twice).
        let output = id.run_with(&options);
        print!(
            "== {} — {} ==\n{}\n",
            id.name(),
            id.description(),
            output.to_text()
        );
        if let Some(dir) = &args.csv_dir {
            if let ExperimentOutput::Figure(fig) = &output {
                let path = dir.join(format!("{}.csv", id.name()));
                if let Err(e) = std::fs::write(&path, render_csv(fig)) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
    let policy = match options.execution {
        ExecutionPolicy::Serial => "serial".to_string(),
        ExecutionPolicy::Threads(n) => format!("{n} threads"),
    };
    eprintln!(
        "repro: {} experiment(s) in {:.2} s ({policy})",
        ids.len(),
        start.elapsed().as_secs_f64()
    );
}
