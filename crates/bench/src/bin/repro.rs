//! `repro` — regenerate every table and figure of the paper's evaluation,
//! plus any extra experiments registered with the open registry.
//!
//! Usage:
//!
//! ```text
//! repro                 # regenerate everything in the registry
//! repro --quick         # smaller simulation campaigns
//! repro --fig fig4a     # one experiment by name (repeat --fig for several)
//! repro --tag paper     # every experiment carrying a tag (repeatable)
//! repro --csv DIR       # additionally write one CSV file per figure to DIR
//! repro --list          # list the registered experiments (name, tags, description)
//! repro --list-md       # the same listing as a markdown table (EXPERIMENTS.md)
//! repro --list-protocols # list the registered protocols (name, mechanisms, used by)
//! repro --protocols SS,HS # run experiments over this protocol set instead
//!                         # of each experiment's default (any registered
//!                         # label, including non-paper specs like SS+RR)
//! repro check-specs     # model-check every coherent spec (reachability,
//!                       # liveness, analytic/simulator agreement); exits
//!                       # non-zero on any violation
//! repro --list-transitions SS # render a protocol's single- and multi-hop
//!                             # transition tables (any registered label or
//!                             # spectrum label like spec:btb--)
//! repro --serial        # disable the multi-core sweep fan-out
//! repro --jobs N        # fan sweeps out across N threads
//! repro --timing        # per-phase wall-clock (build/solve/report) per experiment
//! repro --loss gilbert  # bursty Gilbert–Elliott channel loss for the node
//!                       # simulations (default: independent bernoulli)
//! repro --retry jittered # retransmission retry policy for the node
//!                        # simulations and the check-specs latency bound:
//!                        # fixed (default) | backoff | jittered
//! ```
//!
//! Experiments are resolved by name through [`sigbench::extended_registry`]:
//! the paper's 22 tables/figures (tag `paper`) plus the scenario experiments
//! the bench crate registers at startup (tag `extra`) — the latter are
//! user-level compositions, proof that new experiments need no core changes.
//!
//! Simulation experiments (Figures 11–12) *and* every analytic sweep fan
//! out across all CPUs by default; `--serial` / `--jobs` control the
//! `ExecutionPolicy` and the closing line reports the wall-clock, so a
//! serial-vs-parallel speedup is one `time`-free A/B away.  `--timing`
//! refines that A/B to per-experiment phases: `build` (registry + protocol
//! catalog construction, printed once), `solve` (the experiment's whole
//! compute, including its engine fan-out) and `report` (text/CSV
//! rendering) — record `--serial --timing` vs `--jobs N --timing` on a
//! multi-core box and the solve column is the speedup table.

// Reporting wall-clock timing is this binary's job; the disallowed-methods
// list in clippy.toml guards result-path code, not the timer around it.
#![allow(clippy::disallowed_methods)]

use signaling::experiment::{ExperimentOptions, ExperimentOutput, LossKind, RetryKind};
use signaling::registry::{Experiment, Registry};
use signaling::report::render_csv;
use signaling::ExecutionPolicy;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    quick: bool,
    names: Vec<String>,
    tags: Vec<String>,
    csv_dir: Option<PathBuf>,
    list: bool,
    list_md: bool,
    list_protocols: bool,
    list_transitions: Option<String>,
    check_specs: bool,
    protocols: Vec<String>,
    execution: ExecutionPolicy,
    timing: bool,
    loss: LossKind,
    retry: RetryKind,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        names: Vec::new(),
        tags: Vec::new(),
        csv_dir: None,
        list: false,
        list_md: false,
        list_protocols: false,
        list_transitions: None,
        check_specs: false,
        protocols: Vec::new(),
        execution: ExecutionPolicy::auto(),
        timing: false,
        loss: LossKind::Bernoulli,
        retry: RetryKind::Fixed,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--list-md" => args.list_md = true,
            "--list-protocols" => args.list_protocols = true,
            "--list-transitions" => {
                let label = it
                    .next()
                    .ok_or("--list-transitions needs a protocol label")?;
                args.list_transitions = Some(label);
            }
            "check-specs" => args.check_specs = true,
            "--protocols" => {
                let set = it
                    .next()
                    .ok_or("--protocols needs a comma-separated list")?;
                args.protocols.push(set);
            }
            "--timing" => args.timing = true,
            "--loss" => {
                let kind = it.next().ok_or("--loss needs 'bernoulli' or 'gilbert'")?;
                args.loss = match kind.as_str() {
                    "bernoulli" => LossKind::Bernoulli,
                    "gilbert" => LossKind::GilbertElliott,
                    other => {
                        return Err(format!(
                            "--loss needs 'bernoulli' or 'gilbert', got '{other}'"
                        ))
                    }
                };
            }
            "--retry" => {
                let kind = it
                    .next()
                    .ok_or("--retry needs 'fixed', 'backoff' or 'jittered'")?;
                args.retry = match kind.as_str() {
                    "fixed" => RetryKind::Fixed,
                    "backoff" => RetryKind::Backoff,
                    "jittered" => RetryKind::Jittered,
                    other => {
                        return Err(format!(
                            "--retry needs 'fixed', 'backoff' or 'jittered', got '{other}'"
                        ))
                    }
                };
            }
            "--serial" => args.execution = ExecutionPolicy::Serial,
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs needs an integer, got '{n}'"))?;
                args.execution = ExecutionPolicy::threads(n);
            }
            "--fig" | "--exp" => {
                let name = it.next().ok_or("--fig needs an experiment name")?;
                args.names.push(name);
            }
            "--tag" => {
                let tag = it.next().ok_or("--tag needs a tag")?;
                args.tags.push(tag);
            }
            "--csv" => {
                let dir = it.next().ok_or("--csv needs a directory")?;
                args.csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--fig NAME]... [--tag TAG]... [--csv DIR] \
                     [--protocols SS,HS,...] [--list | --list-md | --list-protocols] \
                     [--list-transitions LABEL] [--serial | --jobs N] [--timing] \
                     [--loss bernoulli|gilbert] [--retry fixed|backoff|jittered]\n\
                     repro check-specs\n\
                     Regenerates the paper's tables and figures and any registered extras.\n\
                     check-specs model-checks every coherent spec (reachability, liveness, \
                     agreement) and exits non-zero on any violation.\n\
                     --list-transitions renders a protocol's single- and multi-hop \
                     transition tables (registered or spec:<code> label).\n\
                     --timing prints per-phase wall-clock: build (registry construction, \
                     once), then solve/report per experiment."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

/// Resolves the CLI selection to experiments, in registry order for tag/all
/// selections and in argument order for `--fig`.
fn select<'r>(registry: &'r Registry, args: &Args) -> Result<Vec<&'r dyn Experiment>, String> {
    let mut selected: Vec<&dyn Experiment> = Vec::new();
    for name in &args.names {
        let exp = registry
            .get(name)
            .ok_or_else(|| format!("unknown experiment '{name}' (try --list)"))?;
        selected.push(exp);
    }
    for tag in &args.tags {
        let matched = registry.with_tag(tag);
        if matched.is_empty() {
            return Err(format!("no experiment carries tag '{tag}' (try --list)"));
        }
        for exp in matched {
            if !selected.iter().any(|e| e.name() == exp.name()) {
                selected.push(exp);
            }
        }
    }
    if args.names.is_empty() && args.tags.is_empty() {
        selected = registry.iter().collect();
    }
    Ok(selected)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if args.check_specs {
        // Model-check the whole coherent spec space before (or instead of)
        // regenerating anything: the CI gate that keeps the declarative
        // tables, the analytic builders and the simulators in agreement.
        let start = Instant::now();
        let report = sigfsm::check_all();
        print!("{}", report.render());
        let structural_elapsed = start.elapsed().as_secs_f64();
        if !report.passed() {
            eprintln!("repro: check-specs in {structural_elapsed:.2} s");
            std::process::exit(1);
        }
        // The numeric half of the latency property: run the canonical
        // node-outage campaign for every coherent spec (CI-sized sessions)
        // and verify the symbolic bound dominates the measured
        // reconvergence time.
        let domination_start = Instant::now();
        let domination = signaling::node_outage::check_latency_domination(
            &ExperimentOptions::quick()
                .with_execution(args.execution)
                .with_timing(args.timing)
                .with_retry_kind(args.retry),
        );
        println!();
        print!("{}", domination.render());
        eprintln!(
            "repro: check-specs in {:.2} s (structural {structural_elapsed:.2} s, \
             domination {:.2} s)",
            start.elapsed().as_secs_f64(),
            domination_start.elapsed().as_secs_f64()
        );
        std::process::exit(if domination.passed() { 0 } else { 1 });
    }

    let build_start = Instant::now();
    let registry = sigbench::extended_registry();
    let protocol_registry = sigbench::protocol_registry();
    let build_elapsed = build_start.elapsed();
    if args.timing {
        eprintln!(
            "timing: build {:>9.3} s   (experiment + protocol registries)",
            build_elapsed.as_secs_f64()
        );
    }

    if let Some(label) = &args.list_transitions {
        // Resolve against the protocol registry first (SS, HS, SS+RR, ...),
        // then the full coherent spectrum (spec:<code> labels).
        let spec = protocol_registry
            .iter()
            .find(|entry| entry.spec.label() == label)
            .map(|entry| entry.spec)
            .or_else(|| {
                sigbench::coherent_spectrum()
                    .iter()
                    .find(|spec| spec.label() == label)
                    .copied()
            });
        let Some(spec) = spec else {
            eprintln!(
                "error: unknown protocol label '{label}' \
                 (try --list-protocols, or a spectrum label like spec:btb--)"
            );
            std::process::exit(2);
        };
        print!("{}", siganalytic::TransitionTable::for_spec(spec).render());
        println!();
        print!(
            "{}",
            siganalytic::MultiHopTransitionTable::for_spec(spec, sigfsm::CHECK_HOPS).render()
        );
        // The symbolic worst-case repair-latency bound the checker's
        // latency property derives from the same table, evaluated at the
        // Kazaa operating point.
        if let Ok(bound) = sigfsm::repair_latency_bound(spec) {
            let p = sigfsm::BoundParams::from_single_hop(
                &siganalytic::SingleHopParams::kazaa_defaults(),
                sigfsm::CHECK_EPSILON,
            );
            println!();
            print!("{}", bound.render(&p));
        }
        return;
    }

    if args.list_protocols {
        println!("{:<8} {:<90} used by", "name", "mechanisms");
        for entry in protocol_registry.iter() {
            println!(
                "{:<8} {:<90} {}",
                entry.spec.label(),
                entry.spec.mechanism_summary(),
                entry.used_by
            );
        }
        return;
    }

    if args.list || args.list_md {
        if args.list_md {
            println!("| name | tags | description |");
            println!("| --- | --- | --- |");
        }
        for exp in registry.iter() {
            let tags = exp.tags().join(", ");
            if args.list_md {
                println!("| `{}` | {} | {} |", exp.name(), tags, exp.description());
            } else {
                println!("{:<20} [{}] {}", exp.name(), tags, exp.description());
            }
        }
        return;
    }

    let mut options = if args.quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    }
    .with_execution(args.execution)
    // Experiments with internal phases (node-scale's schedule/fire/metrics
    // split) report them to stderr under the same flag.
    .with_timing(args.timing)
    // Channel loss process for the node simulations: independent Bernoulli
    // (the paper's model) or the mean-preserving Gilbert–Elliott bursts.
    .with_loss_kind(args.loss)
    // Retransmission retry policy for the node simulations: the paper's
    // fixed interval (default), capped exponential backoff, or
    // decorrelated jitter.
    .with_retry_kind(args.retry);
    if !args.protocols.is_empty() {
        let mut set = Vec::new();
        for csv in &args.protocols {
            match protocol_registry.resolve_set(csv) {
                Ok(specs) => set.extend(specs),
                Err(e) => {
                    eprintln!("error: {e} (try --list-protocols)");
                    std::process::exit(2);
                }
            }
        }
        // Registry resolution guarantees coherent specs; reject set-level
        // mistakes (nothing selected, or the same label twice — which would
        // render ambiguous duplicate series) before any experiment runs.
        if set.is_empty() {
            eprintln!("error: --protocols selected no protocols (try --list-protocols)");
            std::process::exit(2);
        }
        if let Err(e) = signaling::registry::check_protocol_set(&set) {
            eprintln!("error: --protocols: {e}");
            std::process::exit(2);
        }
        options = options.with_protocols(set);
    }

    let selected = match select(&registry, &args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let start = Instant::now();
    for exp in &selected {
        // Run each experiment once and derive both renderings from it (the
        // simulation experiments are far too expensive to run twice).
        let solve_start = Instant::now();
        let output = exp.run(&options);
        let solve_elapsed = solve_start.elapsed();
        let report_start = Instant::now();
        print!(
            "== {} — {} ==\n{}\n",
            exp.name(),
            exp.description(),
            output.to_text()
        );
        if let Some(dir) = &args.csv_dir {
            if let ExperimentOutput::Figure(fig) = &output {
                let path = dir.join(format!("{}.csv", exp.name()));
                if let Err(e) = std::fs::write(&path, render_csv(fig)) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if args.timing {
            eprintln!(
                "timing: {:<20} solve {:>9.3} s   report {:>9.3} s",
                exp.name(),
                solve_elapsed.as_secs_f64(),
                report_start.elapsed().as_secs_f64()
            );
        }
    }
    let policy = match options.execution {
        ExecutionPolicy::Serial => "serial".to_string(),
        ExecutionPolicy::Threads(n) => format!("{n} threads"),
    };
    eprintln!(
        "repro: {} experiment(s) in {:.2} s ({policy})",
        selected.len(),
        start.elapsed().as_secs_f64()
    );
}
