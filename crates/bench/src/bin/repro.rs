//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro                 # regenerate everything with default options
//! repro --quick         # smaller simulation campaigns
//! repro --fig fig4a     # one experiment only (repeat --fig for several)
//! repro --csv DIR       # additionally write one CSV file per figure to DIR
//! repro --list          # list the available experiment ids
//! ```

use signaling::experiment::{ExperimentId, ExperimentOptions, ExperimentOutput};
use signaling::report::{render_csv, run_and_render};
use std::path::PathBuf;

struct Args {
    quick: bool,
    figs: Vec<ExperimentId>,
    csv_dir: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        figs: Vec::new(),
        csv_dir: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--fig" => {
                let name = it.next().ok_or("--fig needs an experiment id")?;
                let id = ExperimentId::parse(&name)
                    .ok_or_else(|| format!("unknown experiment id '{name}' (try --list)"))?;
                args.figs.push(id);
            }
            "--csv" => {
                let dir = it.next().ok_or("--csv needs a directory")?;
                args.csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--fig ID]... [--csv DIR] [--list]\n\
                     Regenerates the paper's tables and figures."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if args.list {
        for id in ExperimentId::ALL {
            println!("{:<8} {}", id.name(), id.description());
        }
        return;
    }

    let options = if args.quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    let ids: Vec<ExperimentId> = if args.figs.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        args.figs.clone()
    };

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    for id in ids {
        print!("{}", run_and_render(id, &options));
        if let Some(dir) = &args.csv_dir {
            if let ExperimentOutput::Figure(fig) = id.run_with(&options) {
                let path = dir.join(format!("{}.csv", id.name()));
                if let Err(e) = std::fs::write(&path, render_csv(&fig)) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}
