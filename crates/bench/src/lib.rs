//! Support library for the benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one of the paper's figures
//! (printing the data series so `cargo bench` output doubles as a
//! reproduction log) and then times the computation that produces it.  The
//! `repro` binary in `src/bin/` regenerates everything at once and is what
//! `EXPERIMENTS.md` is derived from.

use signaling::experiment::{ExperimentId, ExperimentOptions};
use signaling::report::run_and_render;

/// Options used by the benches: small simulation campaigns so `cargo bench`
/// stays fast; the `repro` binary uses the full defaults instead.
pub fn bench_options() -> ExperimentOptions {
    ExperimentOptions::quick()
}

/// Prints one experiment's regenerated data to stdout (the bench log).
pub fn print_experiment(id: ExperimentId) {
    print!("{}", run_and_render(id, &bench_options()));
}

/// Prints several experiments.
pub fn print_experiments(ids: &[ExperimentId]) {
    for id in ids {
        print_experiment(*id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_options_are_small() {
        let o = bench_options();
        assert!(o.sim_replications <= 20);
        assert!(o.sim_points <= 6);
    }

    #[test]
    fn printing_an_experiment_does_not_panic() {
        // Smoke-test the cheap analytic path used by most benches.
        print_experiment(ExperimentId::Fig5a);
    }
}
