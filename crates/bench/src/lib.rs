//! Support library for the benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one of the paper's figures
//! (printing the data series so `cargo bench` output doubles as a
//! reproduction log) and then times the computation that produces it.  The
//! `repro` binary in `src/bin/` regenerates everything at once and is what
//! `EXPERIMENTS.md` is derived from.
//!
//! This crate is also the proof that the experiment registry is open: the
//! extra experiments in [`register_extras`] — two declarative
//! [`ExperimentSpec`] figures over the new DNS/BGP scenarios and one
//! hand-written [`Experiment`] implementation sweeping *across* scenarios —
//! are composed entirely out of `signaling`'s public API, without touching
//! any core source.

use signaling::experiment::{ExperimentId, ExperimentOptions};
use signaling::registry::{
    Experiment, ExperimentSpec, ProtocolRegistry, Registry, RegistryError, SpecKind, SweepTarget,
};
use signaling::report::run_and_render;
use signaling::{
    ExperimentOutput, Metric, Point, Protocol, ProtocolSpec, RefreshMode, Scenario, Series,
    SeriesSet, SingleHopModel, Sweep,
};

/// Reliable-refresh soft state — a design point on the hard/soft spectrum
/// the paper never evaluates: refreshes are acknowledged and retransmitted
/// (so a lost refresh is repaired in `R` rather than waiting a full refresh
/// interval), while triggers stay best-effort and removal stays
/// timeout-only.  Composed purely from [`ProtocolSpec`] knobs; it runs
/// through the analytic models, both simulators, the experiment registry
/// and `repro` with zero protocol-specific code.
pub const SS_RR: ProtocolSpec =
    ProtocolSpec::soft_state("SS+RR").with_refresh(Some(RefreshMode::Reliable));

/// Every *coherent* mechanism composition — the full hard/soft design space
/// the `spec-spectrum` experiment charts — each under a distinct,
/// mechanism-encoding label.
///
/// The label scheme packs one character per knob,
/// `spec:<refresh><timeout><triggers><removal><notify>` with `-` for
/// "absent/best-effort-less", `b` for best-effort, `r` for reliable, `t`/`n`
/// for an enabled timeout/notification — e.g. pure soft state (the SS
/// preset's mechanisms) is `spec:bt b--` written `spec:btb--`, and pure hard
/// state is `spec:--rrn`.  The encoding is injective, so the set always
/// passes [`signaling::registry::check_protocol_set`].
pub fn coherent_spectrum() -> &'static [ProtocolSpec] {
    use std::sync::OnceLock;
    static SPECTRUM: OnceLock<Vec<ProtocolSpec>> = OnceLock::new();
    SPECTRUM.get_or_init(|| {
        ProtocolSpec::enumerate_all("spec")
            .into_iter()
            .filter(|spec| spec.validate().is_ok())
            .map(|spec| spec.with_label(spectrum_label(&spec)))
            .collect()
    })
}

/// The injective `spec:<refresh><timeout><triggers><removal><notify>` label
/// of one spectrum point (leaked once per distinct composition; the spectrum
/// is computed a single time into a static).
fn spectrum_label(spec: &ProtocolSpec) -> &'static str {
    let refresh = match spec.refresh {
        None => '-',
        Some(RefreshMode::BestEffort) => 'b',
        Some(RefreshMode::Reliable) => 'r',
    };
    let timeout = if spec.state_timeout { 't' } else { '-' };
    let triggers = match spec.triggers {
        signaling::Delivery::BestEffort => 'b',
        signaling::Delivery::Reliable => 'r',
    };
    let removal = match spec.removal {
        signaling::Removal::None => '-',
        signaling::Removal::BestEffort => 'b',
        signaling::Removal::Reliable => 'r',
    };
    let notify = if spec.notify_on_removal { 'n' } else { '-' };
    Box::leak(format!("spec:{refresh}{timeout}{triggers}{removal}{notify}").into_boxed_str())
}

/// Options used by the benches: small simulation campaigns so `cargo bench`
/// stays fast; the `repro` binary uses the full defaults instead.
pub fn bench_options() -> ExperimentOptions {
    ExperimentOptions::quick()
}

/// Prints one experiment's regenerated data to stdout (the bench log).
pub fn print_experiment(id: ExperimentId) {
    print!("{}", run_and_render(&id, &bench_options()));
}

/// Prints several experiments.
pub fn print_experiments(ids: &[ExperimentId]) {
    for id in ids {
        print_experiment(*id);
    }
}

/// The registry the `repro` binary runs against: the paper's 22 built-ins
/// plus the extra scenario experiments from [`register_extras`].
pub fn extended_registry() -> Registry {
    let mut registry = Registry::with_builtins();
    // sigtidy: allow(no-unwrap) — name uniqueness is pinned by the registry tests
    register_extras(&mut registry).expect("extra experiment names are unique");
    registry
}

/// The protocol registry the `repro` binary resolves `--protocols` against:
/// the paper's five presets plus the non-paper [`SS_RR`] composition.
pub fn protocol_registry() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::with_paper_presets();
    registry
        .register(SS_RR, "ss-rr-lifetime (custom, non-paper)")
        // sigtidy: allow(no-unwrap) — coherence of SS_RR is pinned by a test below
        .expect("SS+RR is coherent and its label is free");
    registry
}

/// Registers the non-paper experiments.  Every entry here is user-level
/// composition: declarative [`ExperimentSpec`]s and a hand-written
/// [`Experiment`] type, all built on public API only.
pub fn register_extras(registry: &mut Registry) -> Result<(), RegistryError> {
    registry.register(
        ExperimentSpec::new(
            "dns-lease-cost",
            "DNS cache lease: integrated cost vs re-resolution (refresh) timer",
        )
        .scenario(Scenario::dns_cache_lease())
        .sweep(Sweep::refresh_timer(), SweepTarget::RefreshTimer)
        .kind(SpecKind::IntegratedCost)
        .tag("extra")
        .tag("scenario")
        .tag("analytic"),
    )?;
    registry.register(
        ExperimentSpec::new(
            "bgp-keepalive-loss",
            "BGP session keepalive: inconsistency vs channel loss rate",
        )
        .scenario(Scenario::bgp_session_keepalive())
        .protocols(&[Protocol::Ss, Protocol::SsRt, Protocol::Hs])
        .sweep(Sweep::loss_rate(), SweepTarget::LossRate)
        .metric(Metric::Inconsistency)
        .tag("extra")
        .tag("scenario")
        .tag("analytic"),
    )?;
    registry.register(
        ExperimentSpec::new(
            "ss-rr-lifetime",
            "reliable-refresh soft state (SS+RR) vs SS: analytic vs simulation over session length",
        )
        .protocols(&[ProtocolSpec::SS, SS_RR])
        .sweep(Sweep::session_length(), SweepTarget::MeanLifetime)
        .kind(SpecKind::AnalyticVsSim)
        .sim_range(30.0, 300.0)
        .tag("extra")
        .tag("custom-protocol")
        .tag("simulation"),
    )?;
    registry.register(
        ExperimentSpec::new(
            "spec-spectrum",
            "overhead/inconsistency tradeoff of every coherent ProtocolSpec point \
             (the full hard/soft design space), varying the refresh timer",
        )
        .title("Spec spectrum: overhead vs inconsistency for every coherent mechanism composition")
        .protocols(coherent_spectrum())
        .sweep(Sweep::refresh_timer(), SweepTarget::RefreshTimer)
        .kind(SpecKind::Tradeoff)
        .tag("extra")
        .tag("spectrum")
        .tag("analytic"),
    )?;
    registry.register(ScenarioCostSweep)?;
    registry.register(signaling::NodeScaleExperiment)?;
    registry.register(signaling::NodeStormExperiment)?;
    registry.register(signaling::NodeOutageExperiment::new(
        coherent_spectrum().to_vec(),
    ))?;
    registry.register(signaling::NodeRestartStormExperiment::new(
        coherent_spectrum().to_vec(),
    ))?;
    Ok(())
}

/// A small, deterministic slice of the `spec-spectrum` figure — four
/// mechanism compositions spanning the spectrum (pure soft state, pure hard
/// state, everything-reliable soft state, and timeout-free reliable-refresh
/// state) at the first four sweep points — used by the golden test that pins
/// the spectrum scan byte-for-byte (`tests/golden_spec_spectrum.rs`) and by
/// the `dump_spec_spectrum_slice` example that regenerates the fixture.
pub fn spec_spectrum_golden_slice(options: &ExperimentOptions) -> SeriesSet {
    const SLICE_LABELS: [&str; 4] = ["spec:btb--", "spec:--rrn", "spec:rtrrn", "spec:r-br-"];
    const SLICE_POINTS: usize = 4;
    let out = extended_registry()
        .run("spec-spectrum", options)
        // sigtidy: allow(no-unwrap) — registered three lines up, in this crate
        .expect("spec-spectrum is registered");
    // sigtidy: allow(no-unwrap) — spec-spectrum is registered as a figure experiment
    let fig = out.as_figure().expect("spec-spectrum is a figure").clone();
    let mut slice = SeriesSet::new(
        format!("{} (golden slice)", fig.title),
        fig.x_label.clone(),
        fig.y_label.clone(),
    );
    for label in SLICE_LABELS {
        let series = fig
            .get(label)
            // sigtidy: allow(no-unwrap) — the golden slice must fail loudly if the spectrum shrinks
            .unwrap_or_else(|| panic!("{label} missing from the spectrum"));
        let mut trimmed = Series::new(label);
        for p in series.points.iter().take(SLICE_POINTS) {
            trimmed.push(*p);
        }
        slice.push(trimmed);
    }
    slice
}

/// A scenario-sweep experiment: the integrated cost of pure soft state as a
/// function of the refresh timer, one series per *built-in scenario* — the
/// cross-scenario view no single paper figure provides.
///
/// Implemented by hand (not via [`ExperimentSpec`]) to exercise the open
/// [`Experiment`] trait end to end; it derives its protocol set through
/// `ExperimentOptions::protocol_set` (default: SS alone), so
/// `repro --protocols` applies to it like to every other experiment.
pub struct ScenarioCostSweep;

impl Experiment for ScenarioCostSweep {
    fn name(&self) -> &str {
        "scenario-cost-sweep"
    }

    fn description(&self) -> &str {
        "integrated cost of SS vs refresh timer, one series per built-in scenario"
    }

    fn tags(&self) -> Vec<String> {
        vec!["extra".into(), "scenario".into(), "analytic".into()]
    }

    fn run(&self, options: &ExperimentOptions) -> ExperimentOutput {
        let protocols = options.protocol_set(&[ProtocolSpec::SS]);
        let sweep = Sweep::refresh_timer();
        // Keep the historical "of SS" title and one-series-per-scenario
        // labels only for the default set; any override names the protocol
        // in every label so the output is never mislabeled as SS data.
        let default_set = protocols == [ProtocolSpec::SS];
        let title = if default_set {
            "Integrated cost C = w·I + M of SS vs refresh timer, per scenario"
        } else {
            "Integrated cost C = w·I + M vs refresh timer, per scenario"
        };
        let mut set = SeriesSet::new(title, sweep.parameter.clone(), "integrated cost");
        for scenario in Scenario::builtins() {
            for &protocol in &protocols {
                let label = if default_set {
                    scenario.name.clone()
                } else {
                    format!("{} ({})", scenario.name, protocol.label())
                };
                let mut series = Series::new(label);
                for &t in &sweep.values {
                    let params = scenario.params.with_refresh_timer_scaled_timeout(t);
                    let s = SingleHopModel::new(protocol, params)
                        // sigtidy: allow(no-unwrap) — scenario presets are validated by tests
                        .expect("scenario parameters are valid")
                        .solve()
                        // sigtidy: allow(no-unwrap) — the preset chains are solvable by construction
                        .expect("single-hop chain solves");
                    series.push(Point::new(
                        t,
                        s.integrated_cost(scenario.inconsistency_weight),
                    ));
                }
                set.push(series);
            }
        }
        ExperimentOutput::Figure(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_options_are_small() {
        let o = bench_options();
        assert!(o.sim_replications <= 20);
        assert!(o.sim_points <= 6);
    }

    #[test]
    fn printing_an_experiment_does_not_panic() {
        // Smoke-test the cheap analytic path used by most benches.
        print_experiment(ExperimentId::Fig5a);
    }

    #[test]
    fn extended_registry_adds_user_level_experiments() {
        let registry = extended_registry();
        assert_eq!(registry.len(), 31);
        // Paper experiments still resolve...
        assert!(registry.get("fig11a").is_some());
        // ...and the extras are addressable by name and tag.
        for name in [
            "dns-lease-cost",
            "bgp-keepalive-loss",
            "ss-rr-lifetime",
            "spec-spectrum",
            "scenario-cost-sweep",
            "node-scale",
            "node-storm",
            "node-outage",
            "node-restart-storm",
        ] {
            assert!(registry.get(name).is_some(), "{name} missing");
        }
        assert_eq!(registry.with_tag("extra").len(), 9);
        assert_eq!(registry.with_tag("paper").len(), 22);
    }

    #[test]
    fn coherent_spectrum_covers_exactly_the_valid_compositions() {
        let spectrum = coherent_spectrum();
        // Exactly the coherent subset of the 72-point mechanism space.
        let expected = ProtocolSpec::enumerate_all("x")
            .into_iter()
            .filter(|s| s.validate().is_ok())
            .count();
        assert_eq!(spectrum.len(), expected);
        assert!(spectrum.len() > 5, "wider than the paper's five points");
        // Labels are distinct and the set passes the shared set-level rules.
        signaling::registry::check_protocol_set(spectrum).expect("spectrum set is runnable");
        // Every paper preset's mechanisms appear (modulo the label).
        for preset in ProtocolSpec::PAPER {
            assert!(
                spectrum
                    .iter()
                    .any(|s| s.with_label(preset.label) == preset),
                "{preset} missing from the spectrum"
            );
        }
        // The label encoding reads back the mechanisms: pure soft and pure
        // hard state land on their documented codes.
        assert!(spectrum
            .iter()
            .any(|s| s.label() == "spec:btb--" && s.with_label("SS") == ProtocolSpec::SS));
        assert!(spectrum
            .iter()
            .any(|s| s.label() == "spec:--rrn" && s.with_label("HS") == ProtocolSpec::HS));
    }

    #[test]
    fn spectrum_label_order_is_pinned_and_matches_the_fsm_mechanism_code() {
        // The spectrum's series order (and therefore the spec-spectrum
        // golden fixture and its CSV column order) is the spec enumeration
        // order.  That ordering used to be only implicitly stable; pin the
        // full label sequence so any reordering of `enumerate_all` — or any
        // drift in the label scheme — fails loudly rather than silently
        // rewriting the golden.
        let labels: Vec<&str> = coherent_spectrum().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "spec:--rrn",
                "spec:b-br-",
                "spec:b-brn",
                "spec:b-rr-",
                "spec:b-rrn",
                "spec:btb--",
                "spec:btb-n",
                "spec:btbb-",
                "spec:btbbn",
                "spec:btbr-",
                "spec:btbrn",
                "spec:btr--",
                "spec:btr-n",
                "spec:btrb-",
                "spec:btrbn",
                "spec:btrr-",
                "spec:btrrn",
                "spec:r-br-",
                "spec:r-brn",
                "spec:r-rr-",
                "spec:r-rrn",
                "spec:rtb--",
                "spec:rtb-n",
                "spec:rtbb-",
                "spec:rtbbn",
                "spec:rtbr-",
                "spec:rtbrn",
                "spec:rtr--",
                "spec:rtr-n",
                "spec:rtrb-",
                "spec:rtrbn",
                "spec:rtrr-",
                "spec:rtrrn",
            ]
        );
        // The bench-local label encoder and the transition-table layer's
        // mechanism code are independent implementations of the same
        // scheme; they must agree on every point.
        for spec in coherent_spectrum() {
            assert_eq!(
                spec.label(),
                format!("spec:{}", siganalytic::fsm::mechanism_code(spec)),
                "label scheme drifted from the fsm mechanism code"
            );
        }
    }

    #[test]
    fn spec_spectrum_charts_every_coherent_point() {
        let out = extended_registry()
            .run("spec-spectrum", &bench_options())
            .expect("registered");
        let fig = out.as_figure().expect("figure");
        assert_eq!(
            fig.series.len(),
            coherent_spectrum().len(),
            "one series per coherent composition"
        );
        for (series, spec) in fig.series.iter().zip(coherent_spectrum()) {
            assert_eq!(series.label, spec.label());
            assert_eq!(series.len(), Sweep::refresh_timer().len());
            for p in &series.points {
                assert!((0.0..=1.0).contains(&p.x), "{}: I = {}", series.label, p.x);
                assert!(
                    p.y.is_finite() && p.y >= 0.0,
                    "{}: M = {}",
                    series.label,
                    p.y
                );
            }
        }
    }

    #[test]
    fn protocol_registry_resolves_presets_and_the_custom_spec() {
        let protocols = protocol_registry();
        assert_eq!(protocols.len(), 6);
        let set = protocols.resolve_set("SS,SS+RR,HS").unwrap();
        assert_eq!(set[1], SS_RR);
        assert!(protocols
            .get("ss+rr")
            .unwrap()
            .used_by
            .contains("ss-rr-lifetime"));
    }

    #[test]
    fn the_custom_protocol_runs_end_to_end_through_the_registry() {
        // SS+RR through analytic + simulation + registry in one shot: the
        // AnalyticVsSim kind solves the chain for the custom spec and runs
        // replicated discrete-event campaigns of it.
        let mut options = bench_options();
        options.sim_replications = 5;
        options.sim_points = 2;
        let out = extended_registry()
            .run("ss-rr-lifetime", &options)
            .expect("registered");
        let fig = out.as_figure().expect("figure");
        assert_eq!(fig.labels(), vec!["SS", "SS+RR", "SS sim", "SS+RR sim"]);
        // Reliable refresh repairs lost refreshes, so the analytic SS+RR
        // curve sits at or below SS everywhere.
        let ss = fig.get("SS").unwrap();
        let rr = fig.get("SS+RR").unwrap();
        for (a, b) in rr.points.iter().zip(ss.points.iter()) {
            assert!(a.y <= b.y + 1e-12, "SS+RR above SS at x = {}", a.x);
        }
        // And the simulated points carry error bars like every sim series.
        assert!(fig
            .get("SS+RR sim")
            .unwrap()
            .points
            .iter()
            .all(|p| p.err.is_some()));
    }

    #[test]
    fn scenario_cost_sweep_covers_every_builtin_scenario() {
        let out = ScenarioCostSweep.run(&bench_options());
        let fig = out.as_figure().expect("figure");
        assert_eq!(fig.series.len(), Scenario::builtins().len());
        for s in &fig.series {
            assert_eq!(s.len(), Sweep::refresh_timer().len());
            assert!(s.points.iter().all(|p| p.y.is_finite() && p.y >= 0.0));
        }
        // Heavily weighted scenarios pay more for the same inconsistency.
        let bgp = fig.get("BGP session keepalive").unwrap();
        assert!(!bgp.is_empty());
    }

    #[test]
    fn extra_experiments_run_through_the_registry() {
        let registry = extended_registry();
        let out = registry
            .run("dns-lease-cost", &bench_options())
            .expect("registered");
        let fig = out.as_figure().expect("figure");
        assert_eq!(fig.y_label, "integrated cost");
        assert_eq!(fig.series.len(), 5);
    }
}
