//! RSVP-style bandwidth reservation along a multi-hop path — the paper's
//! Section III-B scenario.
//!
//! A sender maintains a reservation at every router between itself and the
//! receiver.  Updates (reservation changes) must propagate hop by hop, and the
//! question is how the consistency of the whole path and the signaling load
//! scale with its length under end-to-end soft state (SS), soft state with
//! hop-by-hop reliable triggers (SS+RT), and hard state (HS).
//!
//! ```text
//! cargo run --example bandwidth_reservation
//! ```

use hs_ss_signaling_repro::percent;
use signaling::{MultiHopCampaign, MultiHopModel, MultiHopScenario, MultiHopSimConfig, Protocol};

fn main() {
    let scenario = MultiHopScenario::bandwidth_reservation();
    let params = scenario.params;
    println!("Scenario: {} ({} hops)\n", scenario.name, params.hops);

    // ------------------------------------------------------------------
    // 1. Per-hop inconsistency (paper Figure 17).
    // ------------------------------------------------------------------
    println!("Analytic per-hop inconsistency (fraction of time hop i disagrees with the sender):");
    println!("{:>6} {:>12} {:>12} {:>12}", "hop", "SS", "SS+RT", "HS");
    let solutions: Vec<_> = Protocol::MULTI_HOP
        .iter()
        .map(|p| {
            MultiHopModel::new(*p, params)
                .expect("valid params")
                .solve()
                .expect("solvable")
        })
        .collect();
    for hop in [1, 5, 10, 15, 20] {
        print!("{hop:>6}");
        for s in &solutions {
            print!(" {:>12.5}", s.hop_inconsistency(hop));
        }
        println!();
    }

    println!("\nEnd-to-end view:");
    for s in &solutions {
        println!(
            "  {:<6} whole-path inconsistency {} at {:.2} signaling messages/s",
            s.protocol.label(),
            percent(s.inconsistency),
            s.message_rate
        );
    }

    // ------------------------------------------------------------------
    // 2. How does path length change the picture? (paper Figure 18)
    // ------------------------------------------------------------------
    println!("\nScaling with path length (analytic):");
    println!("{:>6} {:>12} {:>12} {:>12}", "hops", "SS", "SS+RT", "HS");
    for hops in [2usize, 5, 10, 20] {
        print!("{hops:>6}");
        for protocol in Protocol::MULTI_HOP {
            let s = MultiHopModel::new(protocol, params.with_hops(hops))
                .expect("valid")
                .solve()
                .expect("solvable");
            print!(" {:>12.5}", s.inconsistency);
        }
        println!();
    }

    // ------------------------------------------------------------------
    // 3. Cross-check with the discrete-event simulator (an extension over
    //    the paper, which evaluates multi-hop analytically only).
    // ------------------------------------------------------------------
    println!("\nSimulation cross-check (5 runs x 2 simulated hours, deterministic timers):");
    for protocol in Protocol::MULTI_HOP {
        let cfg = MultiHopSimConfig::deterministic(protocol, params).with_horizon(7200.0);
        let result = MultiHopCampaign::new(cfg, 5, 42).run();
        println!(
            "  {:<6} end-to-end inconsistency {:.5} ±{:.5}, {:.2} messages/s",
            protocol.label(),
            result.end_to_end_inconsistency.mean,
            result.end_to_end_inconsistency.ci95_half_width,
            result.message_rate.mean
        );
    }
}
