//! Defining and registering your own experiment — no core changes required.
//!
//! The experiment layer is an open registry: anything implementing the
//! `Experiment` trait can be registered next to the paper's 22 built-ins and
//! run by name.  This example builds a *new* workload scenario (an MQTT
//! device keeping a session alive at its broker), composes two experiments
//! over it — one declaratively with `ExperimentSpec`, one as a hand-written
//! `Experiment` type — and runs both through a registry, exactly the way the
//! `repro` binary does.
//!
//! ```text
//! cargo run --example custom_experiment
//! ```

use signaling::registry::{Experiment, ExperimentSpec, Registry, SweepTarget};
use signaling::{
    ExperimentOptions, ExperimentOutput, Metric, Point, Protocol, Scenario, Series, SeriesSet,
    SingleHopModel, SingleHopParams, Sweep,
};

/// A brand-new scenario: an MQTT device keeps a session at its broker with
/// periodic PINGREQ keepalives; the broker drops the session after 1.5× the
/// keepalive interval (the MQTT convention).  Stale sessions queue messages
/// for a device that is gone.
fn mqtt_keepalive() -> Scenario {
    let mut p = SingleHopParams::kazaa_defaults();
    p.loss = 0.03; // flaky last-mile wireless
    p = p.with_delay_scaled_retrans(0.1);
    p = p
        .with_mean_lifetime(1800.0)
        .with_mean_update_interval(120.0);
    p.refresh_timer = 30.0; // PINGREQ interval
    p.timeout_timer = 45.0; // 1.5 × keepalive
    Scenario::new("MQTT broker keepalive", p).with_weight(8.0)
}

/// A hand-written experiment: how much inconsistency does each keepalive
/// interval buy, per protocol, at the MQTT scenario's flaky loss rate?
struct KeepaliveTuning;

impl Experiment for KeepaliveTuning {
    fn name(&self) -> &str {
        "mqtt-keepalive-tuning"
    }

    fn description(&self) -> &str {
        "MQTT: inconsistency and cost per keepalive interval (hand-written experiment)"
    }

    fn tags(&self) -> Vec<String> {
        vec!["example".into(), "mqtt".into()]
    }

    fn run(&self, _options: &ExperimentOptions) -> ExperimentOutput {
        let scenario = mqtt_keepalive();
        let sweep = Sweep::logarithmic("keepalive interval T (s)", 5.0, 120.0, 10);
        let mut set = SeriesSet::new(
            "MQTT keepalive tuning: integrated cost per protocol",
            sweep.parameter.clone(),
            "integrated cost",
        );
        for protocol in [Protocol::Ss, Protocol::SsEr, Protocol::Hs] {
            let mut series = Series::new(protocol.label());
            for &t in &sweep.values {
                let params = scenario.params.with_refresh_timer_scaled_timeout(t);
                let s = SingleHopModel::new(protocol, params)
                    .expect("valid parameters")
                    .solve()
                    .expect("solvable chain");
                series.push(Point::new(
                    t,
                    s.integrated_cost(scenario.inconsistency_weight),
                ));
            }
            set.push(series);
        }
        ExperimentOutput::Figure(set)
    }
}

fn main() {
    let mut registry = Registry::with_builtins();

    // One line of registration for the hand-written experiment...
    registry.register(KeepaliveTuning).expect("name is free");

    // ...and ~10 lines of declarative composition for a sweep figure.
    registry
        .register(
            ExperimentSpec::new(
                "mqtt-loss-sensitivity",
                "MQTT: inconsistency vs loss rate of the keepalive channel",
            )
            .scenario(mqtt_keepalive())
            .protocols(&[Protocol::Ss, Protocol::SsRt, Protocol::Hs])
            .sweep(Sweep::loss_rate(), SweepTarget::LossRate)
            .metric(Metric::Inconsistency)
            .tag("example")
            .tag("mqtt"),
        )
        .expect("name is free");

    println!(
        "registry holds {} experiments ({} tagged 'mqtt'):\n",
        registry.len(),
        registry.with_tag("mqtt").len()
    );

    let options = ExperimentOptions::quick();
    for name in ["mqtt-keepalive-tuning", "mqtt-loss-sensitivity"] {
        let exp = registry.get(name).expect("registered above");
        println!("== {} — {} ==", exp.name(), exp.description());
        println!("{}", exp.run(&options).to_text());
    }

    // The paper's figures still resolve by name right next to ours.
    let fig4a = registry
        .run("fig4a", &options)
        .expect("built-in experiment");
    println!(
        "(and fig4a still runs through the same registry: {} series)",
        fig4a.as_figure().expect("figure").series.len()
    );
}
