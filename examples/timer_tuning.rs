//! Timer tuning: where is the sweet spot for the refresh and state-timeout
//! timers?
//!
//! The paper's Figures 6–8 show that soft-state protocols trade signaling
//! load against consistency through their timers, and that the cost-optimal
//! refresh timer depends strongly on which mechanisms the protocol has.  This
//! example finds the cost-minimizing refresh timer for every protocol and
//! illustrates the τ/T guidance of Figure 8(a).
//!
//! ```text
//! cargo run --example timer_tuning
//! ```

use signaling::{CostWeights, Protocol, SingleHopModel, SingleHopParams, Sweep};

/// Finds the refresh timer in `sweep` that minimizes the integrated cost for
/// `protocol`, returning `(timer, cost)`.
fn optimal_refresh_timer(
    protocol: Protocol,
    base: SingleHopParams,
    weights: CostWeights,
    sweep: &Sweep,
) -> (f64, f64) {
    sweep
        .values
        .iter()
        .map(|&t| {
            let params = base.with_refresh_timer_scaled_timeout(t);
            let s = SingleHopModel::new(protocol, params)
                .expect("valid params")
                .solve()
                .expect("solvable");
            (t, weights.cost(s.inconsistency, s.normalized_message_rate))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("non-empty sweep")
}

fn main() {
    let base = SingleHopParams::kazaa_defaults();
    let weights = CostWeights::default();
    let sweep = Sweep::refresh_timer();

    println!(
        "Cost-optimal refresh timer (tau = 3T) for the Kazaa workload, w = {}:",
        weights.inconsistency_weight
    );
    println!(
        "{:<8} {:>18} {:>14}",
        "protocol", "best T (seconds)", "cost at best T"
    );
    for protocol in Protocol::ALL {
        let (t, cost) = optimal_refresh_timer(protocol, base, weights, &sweep);
        if protocol.uses_refresh() {
            println!("{:<8} {:>18.2} {:>14.4}", protocol.label(), t, cost);
        } else {
            println!(
                "{:<8} {:>18} {:>14.4}",
                protocol.label(),
                "(no refresh)",
                cost
            );
        }
    }

    // The τ/T guidance from Figure 8(a): pure soft state wants τ ≈ 2–3 T,
    // reliable-removal protocols prefer τ as large as possible.
    println!("\nInconsistency vs the timeout/refresh ratio (T = 5 s):");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "tau/T", "1.0", "2.0", "3.0", "5.0", "10.0"
    );
    for protocol in [
        Protocol::Ss,
        Protocol::SsEr,
        Protocol::SsRt,
        Protocol::SsRtr,
    ] {
        print!("{:<8}", protocol.label());
        for ratio in [1.0f64, 2.0, 3.0, 5.0, 10.0] {
            let mut params = base;
            params.timeout_timer = ratio * params.refresh_timer;
            let s = SingleHopModel::new(protocol, params)
                .expect("valid params")
                .solve()
                .expect("solvable");
            print!(" {:>10.5}", s.inconsistency);
        }
        println!();
    }

    println!(
        "\nReading: SS and SS+ER bottom out around tau = 2-3 T; SS+RTR keeps improving with\n\
         larger tau because reliable removal no longer depends on the timeout, while a\n\
         timeout shorter than the refresh interval is catastrophic for every soft-state variant."
    );
}
