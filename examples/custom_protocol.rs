//! Defining your own signaling protocol — no core changes required.
//!
//! The protocol layer is a mechanism-composition API: a protocol is a
//! `ProtocolSpec` — one knob per Section-II mechanism — and everything
//! downstream (the analytic Markov models, both discrete-event simulators,
//! the experiment registry, `repro`) derives its behavior from those knobs.
//! The five paper protocols are just named presets.
//!
//! This example composes a design point the paper never evaluates: **soft
//! state with reliable explicit removal but best-effort triggers**
//! ("SS+ERR") — keep the cheap fire-and-forget install/update path of SS+ER,
//! but make sure a departing sender's removal message actually lands.  It
//! then runs the new protocol through the analytic model, a simulation
//! campaign and a registered experiment, side by side with the presets.
//!
//! ```text
//! cargo run --example custom_protocol
//! ```

use signaling::registry::{ExperimentSpec, Registry, SweepTarget};
use signaling::{
    Campaign, ExperimentOptions, Metric, Protocol, ProtocolSpec, Removal, SessionConfig,
    SingleHopModel, SingleHopParams, Sweep,
};

/// Soft state + reliable removal, best-effort everything else.
const SS_ERR: ProtocolSpec = ProtocolSpec::soft_state("SS+ERR").with_removal(Removal::Reliable);

fn main() {
    // A spec validates before it runs anywhere: incoherent combinations
    // (say, a state timeout with no refresh stream feeding it) are typed
    // errors, not silent nonsense.
    SS_ERR.validate().expect("SS+ERR composes coherently");
    println!("SS+ERR = {}\n", SS_ERR.mechanism_summary());

    // --- Analytic: same chain builder as the paper presets. ---
    let params = SingleHopParams::kazaa_defaults().with_mean_lifetime(120.0);
    println!("analytic inconsistency at 120 s sessions (Kazaa defaults):");
    for spec in [Protocol::Ss.spec(), Protocol::SsEr.spec(), SS_ERR] {
        let s = SingleHopModel::new(spec, params)
            .expect("valid")
            .solve()
            .expect("solvable");
        println!(
            "  {:<7} I = {:.6}   M = {:.4}",
            spec.label(),
            s.inconsistency,
            s.normalized_message_rate
        );
    }

    // --- Simulation: the same spec drives the event-driven state machine.
    // Under heavy loss a best-effort removal often dies and SS+ER orphans
    // the receiver state until the timeout; reliable removal reclaims it a
    // round-trip later.
    let mut lossy = params;
    lossy.loss = 0.3;
    println!("\nsimulated receiver-orphan time beyond sender departure (30% loss):");
    for spec in [Protocol::SsEr.spec(), SS_ERR] {
        let result = Campaign::new(SessionConfig::deterministic(spec, lossy), 200, 42).run();
        let orphan = result.receiver_lifetime.mean - result.sender_lifetime.mean;
        println!(
            "  {:<7} {:.2} s orphaned, {} removal msgs, {} removal ACKs",
            spec.label(),
            orphan,
            result.messages.removal,
            result.messages.removal_ack
        );
    }

    // --- Registry: the custom protocol is a first-class experiment axis. ---
    let mut registry = Registry::with_builtins();
    registry
        .register(
            ExperimentSpec::new(
                "ss-err-lifetime",
                "reliable-removal soft state vs the presets, over session length",
            )
            .protocols(&[Protocol::Ss.spec(), Protocol::SsEr.spec(), SS_ERR])
            .sweep(Sweep::session_length(), SweepTarget::MeanLifetime)
            .metric(Metric::Inconsistency)
            .tag("example"),
        )
        .expect("name is free");
    let out = registry
        .run("ss-err-lifetime", &ExperimentOptions::quick())
        .expect("registered above");
    println!("\n{}", out.to_text());
}
