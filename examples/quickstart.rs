//! Quickstart: compare the five signaling protocols on the paper's default
//! (Kazaa peer ↔ supernode) workload, both analytically and by simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use signaling::{
    Campaign, Protocol, SessionConfig, SimRng, SingleHopModel, SingleHopParams, SingleHopSession,
};

fn main() {
    let params = SingleHopParams::kazaa_defaults();

    println!("Hard-state vs soft-state signaling — quickstart");
    println!(
        "Workload: p_l = {}, Delta = {} s, 1/lambda_u = {:.0} s, 1/lambda_r = {:.0} s, T = {} s, tau = {} s\n",
        params.loss,
        params.delay,
        1.0 / params.update_rate,
        params.mean_lifetime(),
        params.refresh_timer,
        params.timeout_timer
    );

    // ------------------------------------------------------------------
    // 1. The analytic model (Section III-A of the paper).
    // ------------------------------------------------------------------
    println!("Analytic model (single hop):");
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "protocol", "inconsistency", "msg rate M", "cost (w=10)"
    );
    for protocol in Protocol::ALL {
        let solution = SingleHopModel::new(protocol, params)
            .expect("valid parameters")
            .solve()
            .expect("solvable model");
        println!(
            "{:<8} {:>16.6} {:>16.6} {:>16.6}",
            protocol.label(),
            solution.inconsistency,
            solution.normalized_message_rate,
            solution.integrated_cost(10.0)
        );
    }

    // ------------------------------------------------------------------
    // 2. A replicated discrete-event simulation with deterministic timers
    //    (what a deployed protocol would actually do).
    // ------------------------------------------------------------------
    println!("\nSimulation (100 sessions per protocol, deterministic timers):");
    println!(
        "{:<8} {:>22} {:>16}",
        "protocol", "inconsistency (±95% CI)", "msg rate M"
    );
    for protocol in Protocol::ALL {
        let cfg = SessionConfig::deterministic(protocol, params);
        let result = Campaign::new(cfg, 100, 7).parallel(true).run();
        println!(
            "{:<8} {:>14.6} ±{:>8.6} {:>16.6}",
            protocol.label(),
            result.inconsistency.mean,
            result.inconsistency.ci95_half_width,
            result.normalized_message_rate.mean
        );
    }

    // ------------------------------------------------------------------
    // 3. Peek inside one session: the message flow of SS+ER.
    // ------------------------------------------------------------------
    println!("\nFirst 12 events of one simulated SS+ER session:");
    let cfg = SessionConfig::deterministic(
        Protocol::SsEr,
        params
            .with_mean_lifetime(60.0)
            .with_mean_update_interval(20.0),
    );
    let mut rng = SimRng::new(3);
    let (metrics, trace) = SingleHopSession::run_traced(&cfg, &mut rng, 10_000);
    for entry in trace.entries().iter().take(12) {
        println!("  {entry}");
    }
    println!(
        "  ... session ended after {:.1} s with {} signaling messages, inconsistency {}",
        metrics.receiver_lifetime,
        metrics.messages.signaling_total(),
        hs_ss_signaling_repro::percent(metrics.inconsistency)
    );
}
