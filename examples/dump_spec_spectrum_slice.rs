//! Dumps the spec-spectrum golden slice JSON under fixed quick/serial
//! options (golden capture for `tests/golden_spec_spectrum.rs`):
//!
//! ```text
//! cargo run --release --example dump_spec_spectrum_slice \
//!     > tests/golden/spec_spectrum_slice.json
//! ```

use signaling::experiment::ExperimentOptions;
use signaling::report::render_json;
use signaling::ExecutionPolicy;

fn main() {
    let options = ExperimentOptions::quick().with_execution(ExecutionPolicy::Serial);
    let slice = sigbench::spec_spectrum_golden_slice(&options);
    println!("{}", render_json(&slice));
}
