//! Dumps the fig11a JSON under fixed quick/serial options (golden capture).

use signaling::experiment::{ExperimentId, ExperimentOptions};
use signaling::report::render_json;
use signaling::ExecutionPolicy;

fn main() {
    let options = ExperimentOptions::quick().with_execution(ExecutionPolicy::Serial);
    let out = ExperimentId::Fig11a.run_with(&options);
    let fig = out.as_figure().expect("fig11a is a figure");
    println!("{}", render_json(fig));
}
