//! Kazaa peer / supernode registration — the paper's motivating single-hop
//! scenario.
//!
//! A peer registers its shared-file list at a supernode when it starts,
//! updates it when it downloads new files, and should have it removed when it
//! quits.  Stale registrations make the supernode direct other peers to a
//! host that is gone — the application-specific cost of inconsistency.
//!
//! This example answers the operational question the paper poses: *which
//! signaling mechanisms should the registration protocol use, and how does the
//! answer change with how long peers stay online?*
//!
//! ```text
//! cargo run --example kazaa_supernode
//! ```

use hs_ss_signaling_repro::percent;
use signaling::{integrated_cost, Protocol, Scenario, SingleHopModel, Sweep};

fn main() {
    let scenario = Scenario::kazaa_peer();
    let base = scenario.params;
    let weight = scenario.inconsistency_weight;

    println!("Scenario: {}", scenario.name);
    println!(
        "A stale registration costs about {weight} wasted messages per second of inconsistency.\n"
    );

    // How does the best protocol choice depend on peer session length?
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10}   best",
        "session (s)", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"
    );
    for &lifetime in &Sweep::session_length().values {
        let mut costs = Vec::new();
        for protocol in Protocol::ALL {
            let params = base.with_mean_lifetime(lifetime);
            let s = SingleHopModel::new(protocol, params)
                .expect("valid params")
                .solve()
                .expect("solvable");
            costs.push((
                protocol,
                integrated_cost(s.inconsistency, s.normalized_message_rate, weight),
            ));
        }
        let best = costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("five protocols");
        print!("{lifetime:>12.0}");
        for (_, c) in &costs {
            print!(" {c:>10.4}");
        }
        println!("   {}", best.0.label());
    }

    // The paper's headline numbers at the default 1800 s sessions.
    println!("\nAt the default 1800 s sessions:");
    let ss = SingleHopModel::new(Protocol::Ss, base)
        .expect("valid")
        .solve()
        .expect("solvable");
    let ss_er = SingleHopModel::new(Protocol::SsEr, base)
        .expect("valid")
        .solve()
        .expect("solvable");
    let hs = SingleHopModel::new(Protocol::Hs, base)
        .expect("valid")
        .solve()
        .expect("solvable");
    println!(
        "  pure soft state leaves the supernode stale {} of the time;",
        percent(ss.inconsistency)
    );
    println!(
        "  adding a best-effort LEAVE message cuts that to {} while adding only {:.2}% more signaling traffic;",
        percent(ss_er.inconsistency),
        100.0 * (ss_er.normalized_message_rate - ss.normalized_message_rate)
            / ss.normalized_message_rate
    );
    println!(
        "  a full hard-state protocol would reach {} but needs reliable delivery and an external failure detector.",
        percent(hs.inconsistency)
    );
}
