//! Workspace root crate.
//!
//! This crate exists to host the runnable `examples/` and the workspace-level
//! integration tests in `tests/`, which exercise the public API exactly the
//! way a downstream user would.  All functionality lives in the member crates
//! and is re-exported through the [`signaling`] facade.

#![forbid(unsafe_code)]

pub use signaling;

/// A tiny convenience used by the examples: format a ratio as a percentage
/// with two decimals.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.1234), "12.34%");
        assert_eq!(percent(0.0), "0.00%");
    }
}
