//! Integration test: the qualitative claims of the paper's evaluation
//! section, checked end-to-end through the experiment registry (the same code
//! path the `repro` binary and the benches use).

use signaling::experiment::{ExperimentId, ExperimentOptions};
use signaling::{Protocol, SeriesSet};

fn figure(id: ExperimentId) -> SeriesSet {
    id.run_with(&ExperimentOptions::quick())
        .as_figure()
        .cloned()
        .unwrap_or_else(|| panic!("{} should be a figure", id.name()))
}

#[test]
fn every_experiment_produces_output() {
    for id in ExperimentId::ALL {
        if id.uses_simulation() {
            // Simulation figures are exercised separately (they are slower).
            continue;
        }
        let out = id.run_with(&ExperimentOptions::quick());
        let text = out.to_text();
        assert!(!text.is_empty(), "{}", id.name());
        if let Some(fig) = out.as_figure() {
            assert!(!fig.series.is_empty(), "{}", id.name());
            for s in &fig.series {
                assert!(!s.is_empty(), "{}/{}", id.name(), s.label);
                for p in &s.points {
                    assert!(
                        p.x.is_finite() && p.y.is_finite(),
                        "{}/{}",
                        id.name(),
                        s.label
                    );
                }
            }
        }
    }
}

#[test]
fn claim_explicit_removal_improves_consistency_cheaply() {
    // "a soft-state approach coupled with explicit removal substantially
    //  improves the degree of state consistency while introducing little
    //  additional signaling message overhead"
    let inconsistency = figure(ExperimentId::Fig4a);
    let overhead = figure(ExperimentId::Fig4b);
    let ss_i = inconsistency.get("SS").unwrap();
    let er_i = inconsistency.get("SS+ER").unwrap();
    let ss_m = overhead.get("SS").unwrap();
    let er_m = overhead.get("SS+ER").unwrap();
    // Substantial consistency improvement at every session length…
    for (ss, er) in ss_i.points.iter().zip(er_i.points.iter()) {
        assert!(
            er.y < 0.75 * ss.y,
            "at lifetime {}: {} vs {}",
            ss.x,
            er.y,
            ss.y
        );
    }
    // …at ≤5% extra overhead for sessions of 100 s and longer.
    for (ss, er) in ss_m.points.iter().zip(er_m.points.iter()) {
        if ss.x >= 100.0 {
            assert!(
                er.y <= ss.y * 1.05,
                "at lifetime {}: overhead {} vs {}",
                ss.x,
                er.y,
                ss.y
            );
        }
    }
}

#[test]
fn claim_reliable_signaling_reaches_hard_state_consistency() {
    // "The addition of reliable explicit setup/update/removal allows the
    //  soft-state approach to achieve comparable (and sometimes better)
    //  consistency than that of the hard-state approach."
    let fig = figure(ExperimentId::Fig4a);
    let rtr = fig.get("SS+RTR").unwrap();
    let hs = fig.get("HS").unwrap();
    let mut rtr_better_somewhere = false;
    for (a, b) in rtr.points.iter().zip(hs.points.iter()) {
        assert!(
            a.y < 3.0 * b.y,
            "SS+RTR ({}) should be comparable to HS ({}) at lifetime {}",
            a.y,
            b.y,
            a.x
        );
        if a.y <= b.y {
            rtr_better_somewhere = true;
        }
    }
    assert!(
        rtr_better_somewhere,
        "SS+RTR should beat HS for at least some session lengths"
    );
}

#[test]
fn claim_reliable_triggers_matter_mainly_for_long_sessions() {
    // Figure 4(a): for long sessions the protocols group by trigger
    // reliability; for short sessions they group by removal mechanism.
    let fig = figure(ExperimentId::Fig4a);
    let ss = fig.get("SS").unwrap();
    let ss_rt = fig.get("SS+RT").unwrap();
    let ss_er = fig.get("SS+ER").unwrap();
    let first = 0; // shortest session
    let last = ss.points.len() - 1; // longest session
                                    // Short sessions: SS ≈ SS+RT (removal dominates), both far above SS+ER.
    let rel_short = (ss.points[first].y - ss_rt.points[first].y).abs() / ss.points[first].y;
    assert!(
        rel_short < 0.25,
        "short sessions: SS vs SS+RT differ by {rel_short}"
    );
    assert!(ss.points[first].y > 3.0 * ss_er.points[first].y);
    // Long sessions: reliable triggers separate SS+RT from SS clearly.
    assert!(ss_rt.points[last].y < 0.8 * ss.points[last].y);
}

#[test]
fn claim_modest_loss_makes_reliability_worthwhile() {
    // Figure 5(a): "even for modest loss rates, reliable transmission
    // significantly improves the performance of soft-state protocols".
    let fig = figure(ExperimentId::Fig5a);
    let ss = fig.get("SS").unwrap();
    let ss_rt = fig.get("SS+RT").unwrap();
    // Find the ~10% loss point.
    let idx = ss
        .points
        .iter()
        .position(|p| p.x >= 0.1)
        .expect("sweep reaches 10% loss");
    assert!(ss_rt.points[idx].y < 0.8 * ss.points[idx].y);
}

#[test]
fn claim_delay_increases_inconsistency_roughly_linearly() {
    // Figure 5(b): an approximately linear increase for all protocols.
    let fig = figure(ExperimentId::Fig5b);
    for s in &fig.series {
        assert!(s.is_non_decreasing(1e-9), "{}", s.label);
        // Compare the chord slope of the first and second halves: a straight
        // line has equal halves; we allow a factor of two.
        let n = s.points.len();
        let (x0, y0) = (s.points[0].x, s.points[0].y);
        let (xm, ym) = (s.points[n / 2].x, s.points[n / 2].y);
        let (x1, y1) = (s.points[n - 1].x, s.points[n - 1].y);
        let first_half = (ym - y0) / (xm - x0);
        let second_half = (y1 - ym) / (x1 - xm);
        assert!(
            second_half < 2.0 * first_half + 1e-9 && first_half < 2.0 * second_half + 1e-9,
            "{}: slopes {first_half} vs {second_half} are not roughly linear",
            s.label
        );
    }
}

#[test]
fn claim_refresh_timer_has_an_optimal_operating_point() {
    // Figure 7: SS and SS+RT have a clear interior cost optimum; SS+RTR
    // prefers long timers; HS does not care.
    let fig = figure(ExperimentId::Fig7);
    for label in ["SS", "SS+RT"] {
        let s = fig.get(label).unwrap();
        let best = s.argmin_y().unwrap();
        assert!(
            best > s.points[0].x && best < s.points.last().unwrap().x,
            "{label}: optimum {best} should be interior"
        );
    }
    let rtr = fig.get("SS+RTR").unwrap();
    let best_rtr = rtr.argmin_y().unwrap();
    assert!(
        best_rtr >= 10.0,
        "SS+RTR prefers long refresh timers, found {best_rtr}"
    );
    let hs = fig.get("HS").unwrap();
    assert!(hs.y_max().unwrap() - hs.y_min().unwrap() < 1e-9);
}

#[test]
fn claim_hs_is_most_sensitive_to_retransmission_timer() {
    // Figure 8(b): HS depends only on reliable transmission, so its
    // inconsistency grows fastest as the retransmission timer grows.
    let fig = figure(ExperimentId::Fig8b);
    let growth = |label: &str| {
        let s = fig.get(label).unwrap();
        s.points.last().unwrap().y / s.points.first().unwrap().y.max(1e-12)
    };
    let hs = growth("HS");
    for label in ["SS", "SS+ER"] {
        assert!(
            hs > growth(label),
            "HS growth {hs} should exceed {label} growth {}",
            growth(label)
        );
    }
}

#[test]
fn claim_tradeoff_crossover_between_soft_and_hard_state() {
    // Figure 10(a): to reach very low inconsistency HS is the cheapest
    // option, while at loose consistency targets SS needs the fewest
    // messages.
    let fig = figure(ExperimentId::Fig10a);
    let ss = fig.get("SS").unwrap();
    let hs = fig.get("HS").unwrap();
    // Very tight consistency targets are only reachable with hard state: the
    // lowest inconsistency HS attains is below anything SS ever reaches.
    let ss_best_consistency = ss.points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let hs_best_consistency = hs.points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    assert!(hs_best_consistency < ss_best_consistency);
    // At the loose-consistency end of the sweep (frequent updates), the
    // soft-state approach is the cheaper one: per-update reliable exchanges
    // make HS's overhead balloon while SS just keeps refreshing.
    let ss_at_loosest = ss
        .points
        .iter()
        .max_by(|a, b| a.x.partial_cmp(&b.x).expect("finite"))
        .expect("non-empty");
    let hs_at_loosest = hs
        .points
        .iter()
        .max_by(|a, b| a.x.partial_cmp(&b.x).expect("finite"))
        .expect("non-empty");
    assert!(
        ss_at_loosest.y < hs_at_loosest.y,
        "SS ({}) should be cheaper than HS ({}) when consistency demands are loose",
        ss_at_loosest.y,
        hs_at_loosest.y
    );
}

#[test]
fn claim_multi_hop_inconsistency_grows_with_distance_and_hops() {
    let per_hop = figure(ExperimentId::Fig17);
    for s in &per_hop.series {
        assert!(s.is_non_decreasing(1e-9), "{}", s.label);
    }
    // SS is the most sensitive to the number of hops (Figure 18a).
    let fig18 = figure(ExperimentId::Fig18a);
    let growth = |label: &str| {
        let s = fig18.get(label).unwrap();
        s.points.last().unwrap().y / s.points.first().unwrap().y.max(1e-12)
    };
    assert!(growth("SS") > growth("SS+RT"));
    assert!(growth("SS") > growth("HS"));
    // Hop-by-hop reliability adds little signaling overhead (Figure 18b).
    let fig18b = figure(ExperimentId::Fig18b);
    let ss = fig18b.get("SS").unwrap().points.last().unwrap().y;
    let ss_rt = fig18b.get("SS+RT").unwrap().points.last().unwrap().y;
    assert!(ss_rt < 1.5 * ss);
}

#[test]
fn protocol_labels_cover_all_five_protocols_in_single_hop_figures() {
    let fig = figure(ExperimentId::Fig6a);
    let labels = fig.labels();
    for p in Protocol::ALL {
        assert!(labels.contains(&p.label()), "{p} missing from Fig 6(a)");
    }
}
