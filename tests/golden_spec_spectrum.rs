//! Golden test pinning a slice of the `spec-spectrum` experiment
//! byte-for-byte.
//!
//! The spectrum scan exercises the whole analytic fast path — coherent-spec
//! enumeration, `protocol_transitions` for non-paper mechanism compositions,
//! the rebuild-in-place `SweepSession`s, the engine-level sweep fan-out and
//! the JSON renderer — so any unintended numeric or ordering change anywhere
//! in that stack shows up here as a byte diff.  Regenerate the fixture (only
//! after establishing the change is intended) with:
//!
//! ```text
//! cargo run --release --example dump_spec_spectrum_slice \
//!     > tests/golden/spec_spectrum_slice.json
//! ```

use signaling::experiment::ExperimentOptions;
use signaling::report::render_json;
use signaling::ExecutionPolicy;

const GOLDEN: &str = include_str!("golden/spec_spectrum_slice.json");

fn slice_json(execution: ExecutionPolicy) -> String {
    let options = ExperimentOptions::quick().with_execution(execution);
    render_json(&sigbench::spec_spectrum_golden_slice(&options))
}

#[test]
fn spec_spectrum_slice_matches_the_committed_golden_json() {
    // The example appends a trailing newline via println!.
    let fresh = slice_json(ExecutionPolicy::Serial) + "\n";
    assert_eq!(
        fresh, GOLDEN,
        "spec-spectrum output drifted from tests/golden/spec_spectrum_slice.json"
    );
}

#[test]
fn spec_spectrum_slice_is_bit_identical_under_every_execution_policy() {
    // The analytic sweep fans out with the work-stealing assignment; the
    // spectrum must be byte-identical to serial execution regardless.
    let serial = slice_json(ExecutionPolicy::Serial);
    for n in [2, 4, 16] {
        assert_eq!(
            serial,
            slice_json(ExecutionPolicy::threads(n)),
            "Threads({n}) diverged from Serial"
        );
    }
}
