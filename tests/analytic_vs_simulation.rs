//! Integration test: the analytic CTMC models against the discrete-event
//! simulator, following the paper's validation methodology (Figures 11–12):
//! exponential-approximation model vs. a simulation of the deployed protocol
//! with deterministic timers.

use signaling::compare::{compare_all, compare_single_hop};
use signaling::{Protocol, SingleHopParams, TimerMode};

fn medium_params() -> SingleHopParams {
    // Medium-length sessions keep the simulation cheap while leaving every
    // mechanism (updates, refreshes, removal, timeouts) well exercised.
    SingleHopParams::kazaa_defaults()
        .with_mean_lifetime(300.0)
        .with_mean_update_interval(30.0)
}

#[test]
fn inconsistency_agrees_for_every_protocol() {
    for protocol in Protocol::ALL {
        let row = compare_single_hop(protocol, medium_params(), TimerMode::Deterministic, 300, 17);
        // The paper reports <1% absolute difference; we allow 2 percentage
        // points to keep the test robust at 300 replications.
        assert!(
            row.inconsistency_gap() < 0.02,
            "{protocol}: model {} vs sim {} ± {}",
            row.analytic.inconsistency,
            row.simulated_inconsistency.mean,
            row.simulated_inconsistency.ci95_half_width
        );
    }
}

#[test]
fn message_rate_agrees_within_paper_tolerance() {
    // The paper reports 5–15% differences on the message rate between the
    // analytic model and the deterministic-timer simulation; we accept 25%.
    for protocol in Protocol::ALL {
        let row = compare_single_hop(protocol, medium_params(), TimerMode::Deterministic, 300, 23);
        assert!(
            row.message_rate_relative_gap() < 0.25,
            "{protocol}: model {} vs sim {}",
            row.analytic.normalized_message_rate,
            row.simulated_message_rate.mean
        );
    }
}

#[test]
fn receiver_lifetime_agrees() {
    // The receiver keeps state for the sender lifetime plus the orphan
    // removal time; model and simulation must agree on that shape.
    for protocol in [Protocol::Ss, Protocol::SsEr, Protocol::Hs] {
        let row = compare_single_hop(protocol, medium_params(), TimerMode::Deterministic, 200, 5);
        let model = row.analytic.expected_lifetime;
        let sim = row.simulated_receiver_lifetime.mean;
        let rel = (model - sim).abs() / model;
        assert!(
            rel < 0.15,
            "{protocol}: model lifetime {model} vs simulated {sim}"
        );
    }
}

#[test]
fn protocol_ranking_is_preserved_by_the_simulator() {
    // Whatever the absolute gaps, the simulator must reproduce the paper's
    // ordering: SS worst, explicit removal a big win, SS+RTR ≈ HS best.
    let rows = compare_all(medium_params(), TimerMode::Deterministic, 300, 31);
    let sim = |p: Protocol| {
        rows.iter()
            .find(|r| r.protocol == p)
            .expect("protocol present")
            .simulated_inconsistency
            .mean
    };
    assert!(sim(Protocol::SsEr) < sim(Protocol::Ss));
    assert!(sim(Protocol::SsRtr) < sim(Protocol::Ss));
    assert!(sim(Protocol::Hs) < sim(Protocol::SsEr));
    assert!(sim(Protocol::SsRtr) < sim(Protocol::SsEr));
    // And on the overhead side HS stays the cheapest, soft state pays for
    // refreshes.
    let sim_m = |p: Protocol| {
        rows.iter()
            .find(|r| r.protocol == p)
            .expect("protocol present")
            .simulated_message_rate
            .mean
    };
    for p in [
        Protocol::Ss,
        Protocol::SsEr,
        Protocol::SsRt,
        Protocol::SsRtr,
    ] {
        assert!(
            sim_m(Protocol::Hs) < sim_m(p),
            "HS should be cheaper than {p}"
        );
    }
}

#[test]
fn loss_sensitivity_matches_between_model_and_simulation() {
    // Figure 5(a) shape: raising the loss rate hurts SS much more than
    // SS+RTR, in both the model and the simulator.
    let mut lossy = medium_params();
    lossy.loss = 0.2;
    let clean = medium_params();

    let model = |protocol: Protocol, params: SingleHopParams| {
        signaling::SingleHopModel::new(protocol, params)
            .expect("valid")
            .solve()
            .expect("solvable")
            .inconsistency
    };
    let sim = |protocol: Protocol, params: SingleHopParams| {
        compare_single_hop(protocol, params, TimerMode::Deterministic, 250, 41)
            .simulated_inconsistency
            .mean
    };

    for eval in [model as fn(Protocol, SingleHopParams) -> f64, sim] {
        let ss_increase = eval(Protocol::Ss, lossy) - eval(Protocol::Ss, clean);
        let rtr_increase = eval(Protocol::SsRtr, lossy) - eval(Protocol::SsRtr, clean);
        assert!(
            ss_increase > 0.0,
            "loss must hurt SS (increase {ss_increase})"
        );
        assert!(rtr_increase >= 0.0, "loss must not help SS+RTR");
        assert!(
            ss_increase > rtr_increase,
            "SS should suffer more additional inconsistency under loss than SS+RTR \
             ({ss_increase} vs {rtr_increase})"
        );
    }
}
