//! Integration test: the multi-hop analytic model against the multi-hop
//! discrete-event simulator.  The paper evaluates the multi-hop scenario
//! analytically only; cross-checking it against an independent simulation is
//! an extension of this reproduction, so the tolerances here are looser than
//! for the single-hop agreement tests (the analytic chain treats consistency
//! as a prefix property and approximates timeout cascades).

use signaling::{MultiHopCampaign, MultiHopModel, MultiHopParams, MultiHopSimConfig, Protocol};

fn params(hops: usize) -> MultiHopParams {
    MultiHopParams::reservation_defaults().with_hops(hops)
}

fn simulate(protocol: Protocol, p: MultiHopParams, seed: u64) -> signaling::MultiHopCampaignResult {
    let cfg = MultiHopSimConfig::deterministic(protocol, p).with_horizon(6000.0);
    MultiHopCampaign::new(cfg, 4, seed).run()
}

#[test]
fn end_to_end_inconsistency_same_order_of_magnitude() {
    for protocol in Protocol::MULTI_HOP {
        let model = MultiHopModel::new(protocol, params(10))
            .expect("valid")
            .solve()
            .expect("solvable");
        let sim = simulate(protocol, params(10), 3);
        let m = model.inconsistency;
        let s = sim.end_to_end_inconsistency.mean;
        assert!(
            s < 4.0 * m + 0.02 && m < 4.0 * s + 0.02,
            "{protocol}: model {m} vs simulation {s}"
        );
    }
}

#[test]
fn per_hop_profile_increases_in_both_model_and_simulation() {
    let protocol = Protocol::Ss;
    let model = MultiHopModel::new(protocol, params(8))
        .expect("valid")
        .solve()
        .expect("solvable");
    let sim = simulate(protocol, params(8), 11);
    assert_eq!(model.per_hop_inconsistency.len(), 8);
    assert_eq!(sim.per_hop_inconsistency.len(), 8);
    // First hop clearly better than last hop on both sides.
    assert!(model.per_hop_inconsistency[7] > 2.0 * model.per_hop_inconsistency[0]);
    assert!(
        sim.per_hop_inconsistency[7].mean > 2.0 * sim.per_hop_inconsistency[0].mean,
        "simulated per-hop profile: {:?}",
        sim.per_hop_inconsistency
            .iter()
            .map(|s| s.mean)
            .collect::<Vec<_>>()
    );
}

#[test]
fn protocol_ordering_agrees_between_model_and_simulation() {
    let mut model_i = Vec::new();
    let mut sim_i = Vec::new();
    for protocol in Protocol::MULTI_HOP {
        model_i.push((
            protocol,
            MultiHopModel::new(protocol, params(12))
                .expect("valid")
                .solve()
                .expect("solvable")
                .inconsistency,
        ));
        sim_i.push((
            protocol,
            simulate(protocol, params(12), 29)
                .end_to_end_inconsistency
                .mean,
        ));
    }
    let rank = |rows: &[(Protocol, f64)], p: Protocol| {
        rows.iter().find(|(q, _)| *q == p).expect("present").1
    };
    for rows in [&model_i, &sim_i] {
        assert!(
            rank(rows, Protocol::Ss) > rank(rows, Protocol::SsRt),
            "SS should be worse than SS+RT: {rows:?}"
        );
    }
}

#[test]
fn message_rate_agrees_roughly() {
    // Refreshes dominate the soft-state multi-hop load; model and simulation
    // should agree within ~30% on the total hop-transmission rate.
    for protocol in Protocol::MULTI_HOP {
        let model = MultiHopModel::new(protocol, params(10))
            .expect("valid")
            .solve()
            .expect("solvable");
        let sim = simulate(protocol, params(10), 7);
        let m = model.message_rate;
        let s = sim.message_rate.mean;
        let rel = (m - s).abs() / s.max(1e-9);
        assert!(rel < 0.35, "{protocol}: model {m} vs sim {s} (rel {rel})");
    }
}

#[test]
fn hard_state_multi_hop_is_cheap_in_both_views() {
    let ss_model = MultiHopModel::new(Protocol::Ss, params(10))
        .expect("valid")
        .solve()
        .expect("solvable");
    let hs_model = MultiHopModel::new(Protocol::Hs, params(10))
        .expect("valid")
        .solve()
        .expect("solvable");
    assert!(hs_model.message_rate < 0.5 * ss_model.message_rate);

    let ss_sim = simulate(Protocol::Ss, params(10), 13);
    let hs_sim = simulate(Protocol::Hs, params(10), 13);
    assert!(hs_sim.message_rate.mean < 0.5 * ss_sim.message_rate.mean);
}
