//! Coherence properties of the mechanism-composition protocol layer.
//!
//! Three guarantees:
//!
//! 1. **Preset fidelity** — for each paper protocol, the spec-derived
//!    mechanism predicates equal the `Protocol` enum's paper-transcribed
//!    answers, and every preset validates.
//! 2. **Total validation** — `ProtocolSpec::validate` never panics anywhere
//!    in the full 72-point mechanism space (exhaustively) nor under random
//!    parameter perturbation (proptest).
//! 3. **Valid ⇒ runnable** — every *coherent* composition yields a
//!    well-formed transition table and a solvable analytic chain, and runs
//!    a discrete-event session to completion: the validation rules are
//!    exactly the boundary of the runnable space.

use signaling::{
    MultiHopModel, MultiHopParams, Protocol, ProtocolSpec, SessionConfig, SimRng, SingleHopModel,
    SingleHopParams, SingleHopSession,
};

#[test]
fn preset_predicates_match_the_enum_ground_truth() {
    for protocol in Protocol::ALL {
        let spec = protocol.spec();
        assert_eq!(spec.label(), protocol.label(), "{protocol}");
        assert_eq!(spec.uses_refresh(), protocol.uses_refresh(), "{protocol}");
        assert_eq!(
            spec.uses_state_timeout(),
            protocol.uses_state_timeout(),
            "{protocol}"
        );
        assert_eq!(
            spec.uses_explicit_removal(),
            protocol.uses_explicit_removal(),
            "{protocol}"
        );
        assert_eq!(
            spec.reliable_triggers(),
            protocol.reliable_triggers(),
            "{protocol}"
        );
        assert_eq!(
            spec.reliable_removal(),
            protocol.reliable_removal(),
            "{protocol}"
        );
        assert_eq!(
            spec.notifies_on_removal(),
            protocol.notifies_on_removal(),
            "{protocol}"
        );
        // No paper protocol has reliable refreshes.
        assert!(!spec.reliable_refresh(), "{protocol}");
        // And every preset is a coherent composition.
        spec.validate()
            .unwrap_or_else(|e| panic!("{protocol}: {e}"));
        // The enum round-trips through its spec (conversion + equality shims).
        assert_eq!(ProtocolSpec::from(protocol), spec);
        assert!(protocol == spec);
        assert!(spec == protocol);
    }
}

#[test]
fn every_valid_composition_runs_end_to_end() {
    let quick = SingleHopParams::kazaa_defaults()
        .with_mean_lifetime(60.0)
        .with_mean_update_interval(20.0);
    let multi = MultiHopParams::reservation_defaults().with_hops(3);
    let mut valid = 0usize;
    for spec in ProtocolSpec::enumerate_all("x") {
        // Rule 2: validation is total over the whole space.
        let verdict = spec.validate();
        let Ok(()) = verdict else { continue };
        valid += 1;

        // Rule 3a: the single-hop chain is well-formed and solvable.
        let solution = SingleHopModel::new(spec, quick)
            .expect("valid spec accepted")
            .solve()
            .unwrap_or_else(|e| panic!("{spec:?}: single-hop solve failed: {e}"));
        assert!(
            (0.0..=1.0).contains(&solution.inconsistency),
            "{spec:?}: I = {}",
            solution.inconsistency
        );
        assert!(
            solution.message_rate.is_finite() && solution.message_rate >= 0.0,
            "{spec:?}"
        );
        for e in &SingleHopModel::new(spec, quick)
            .unwrap()
            .rate_table()
            .entries
        {
            assert!(e.rate.is_finite() && e.rate > 0.0, "{spec:?}: {e:?}");
        }

        // Rule 3b: the multi-hop chain solves too.
        let mh = MultiHopModel::new(spec, multi)
            .expect("valid spec accepted")
            .solve()
            .unwrap_or_else(|e| panic!("{spec:?}: multi-hop solve failed: {e}"));
        assert!((0.0..=1.0).contains(&mh.inconsistency), "{spec:?}");

        // Rule 3c: a simulated session terminates with sane metrics.
        let cfg = SessionConfig::deterministic(spec, quick);
        let mut rng = SimRng::new(7);
        let m = SingleHopSession::run(&cfg, &mut rng);
        assert!((0.0..=1.0).contains(&m.inconsistency), "{spec:?}: {m:?}");
        assert!(m.receiver_lifetime >= m.sender_lifetime, "{spec:?}");
    }
    // The five presets are in the valid set, and the space is genuinely
    // larger than the paper's five points — that is the point of the API.
    assert!(valid > 5, "only {valid} valid compositions");
    assert!(valid < 72, "validation rejects nothing?");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Validation never panics for random spec × random parameters, and
        /// accepted (spec, params) pairs never panic the model constructor.
        #[test]
        fn prop_validate_is_total_and_accepted_specs_build(
            idx in 0usize..72,
            loss in -0.5f64..1.5,
            refresh in -1.0f64..60.0,
        ) {
            let spec = ProtocolSpec::enumerate_all("p")[idx];
            let _ = spec.validate(); // must not panic
            let mut params = SingleHopParams::kazaa_defaults();
            params.loss = loss;
            params.refresh_timer = refresh;
            match SingleHopModel::new(spec, params) {
                Ok(model) => {
                    // Constructor accepted ⇒ both validations passed.
                    prop_assert!(spec.validate().is_ok());
                    prop_assert!(params.validate().is_ok());
                    let s = model.solve();
                    prop_assert!(s.is_ok(), "{spec:?} solve failed");
                }
                Err(_) => {
                    // Typed rejection: either the spec or the params failed.
                    prop_assert!(
                        spec.validate().is_err() || params.validate().is_err()
                    );
                }
            }
        }

        /// The declarative transition tables (`siganalytic::fsm`) and the
        /// historical predicate-derived reference builders enumerate the
        /// same enabled transitions — same order, bitwise-equal rates — for
        /// a random coherent spec under random parameters, single- and
        /// multi-hop.
        #[test]
        fn prop_fsm_tables_match_predicate_derived_reference(
            idx in 0usize..33,
            loss in 0.0f64..0.9,
            refresh in 0.5f64..30.0,
            hops in 2usize..8,
        ) {
            let coherent: Vec<ProtocolSpec> = ProtocolSpec::enumerate_all("p")
                .into_iter()
                .filter(|s| s.validate().is_ok())
                .collect();
            prop_assert_eq!(coherent.len(), 33);
            let spec = coherent[idx];
            let params = {
                let mut p = SingleHopParams::kazaa_defaults()
                    .with_refresh_timer_scaled_timeout(refresh);
                p.loss = loss;
                p
            };
            let table = siganalytic::TransitionTable::for_spec(spec);
            prop_assert_eq!(
                table.enabled_entries(&params),
                siganalytic::single_hop::transitions::protocol_transitions_reference(
                    spec, &params
                )
                .entries,
                "{:?} single-hop", spec
            );
            let mp = {
                let mut p = MultiHopParams::reservation_defaults()
                    .with_hops(hops)
                    .with_refresh_timer_scaled_timeout(refresh);
                p.loss = loss;
                p
            };
            let mtable = siganalytic::MultiHopTransitionTable::for_spec(spec, hops);
            prop_assert_eq!(
                mtable.enabled_entries(&mp),
                siganalytic::multi_hop::transitions::multi_hop_transitions_reference(
                    spec, &mp
                ),
                "{:?} multi-hop", spec
            );
        }

        /// For every preset the mechanism-derived single-hop table equals
        /// the paper's Table I rates under random (coherent) parameters.
        #[test]
        fn prop_preset_tables_follow_table_one(
            proto_idx in 0usize..5,
            loss in 0.0f64..0.9,
            refresh in 0.5f64..30.0,
        ) {
            use signaling::Protocol::*;
            let protocol = [Ss, SsEr, SsRt, SsRtr, Hs][proto_idx];
            let params = {
                let mut p = SingleHopParams::kazaa_defaults()
                    .with_refresh_timer_scaled_timeout(refresh);
                p.loss = loss;
                p
            };
            let table = siganalytic::single_hop::protocol_transitions(protocol, &params);
            let success = 1.0 - loss;
            // Row 3 of Table I, per protocol family.
            use siganalytic::single_hop::SingleHopState::{Consistent, Setup2};
            let slow = table.rate(Setup2, Consistent);
            let expected = match protocol {
                Ss | SsEr => success / params.refresh_timer,
                SsRt | SsRtr => {
                    (1.0 / params.refresh_timer + 1.0 / params.retrans_timer) * success
                }
                Hs => success / params.retrans_timer,
            };
            prop_assert_eq!(slow, expected, "{} slow-path repair", protocol);
        }
    }
}
