//! Property-based integration tests: the models and the simulator must stay
//! well-behaved over the whole parameter space, not just at the paper's
//! defaults.

use proptest::prelude::*;
use signaling::{
    MultiHopModel, MultiHopParams, Protocol, SessionConfig, SimRng, SingleHopModel,
    SingleHopParams, SingleHopSession, TimerMode,
};

/// Strategy over reasonable single-hop parameter sets.
fn single_hop_params() -> impl Strategy<Value = SingleHopParams> {
    (
        0.0f64..0.5,     // loss
        0.005f64..0.5,   // delay
        5.0f64..500.0,   // mean update interval
        20.0f64..5000.0, // mean lifetime
        0.5f64..60.0,    // refresh timer
        1.1f64..5.0,     // timeout / refresh ratio
        1.0f64..4.0,     // retrans / delay ratio
        0.0f64..1e-3,    // false signal rate
    )
        .prop_map(
            |(loss, delay, update, lifetime, refresh, tau_ratio, r_ratio, false_rate)| {
                SingleHopParams {
                    loss,
                    delay,
                    update_rate: 1.0 / update,
                    removal_rate: 1.0 / lifetime,
                    refresh_timer: refresh,
                    timeout_timer: tau_ratio * refresh,
                    retrans_timer: r_ratio * delay,
                    false_signal_rate: false_rate,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_model_is_well_behaved(params in single_hop_params()) {
        for protocol in Protocol::ALL {
            let solution = SingleHopModel::new(protocol, params)
                .expect("strategy produces valid params")
                .solve()
                .expect("chain must solve");
            prop_assert!((0.0..=1.0).contains(&solution.inconsistency), "{protocol}");
            prop_assert!(solution.normalized_message_rate >= 0.0);
            prop_assert!(solution.expected_lifetime >= params.mean_lifetime() * 0.999,
                "{protocol}: receiver lifetime {} below sender lifetime {}",
                solution.expected_lifetime, params.mean_lifetime());
            let total: f64 = solution.stationary.values().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
            prop_assert!(solution.message_rates.total() >= 0.0);
        }
    }

    #[test]
    fn simulator_terminates_and_stays_in_range(
        params in single_hop_params(),
        seed in 0u64..1_000,
        deterministic in any::<bool>(),
    ) {
        // Cap the lifetime so a single property case stays cheap.
        let params = SingleHopParams {
            removal_rate: params.removal_rate.max(1.0 / 600.0),
            ..params
        };
        for protocol in Protocol::ALL {
            let cfg = if deterministic {
                SessionConfig::deterministic(protocol, params)
            } else {
                SessionConfig::exponential(protocol, params)
            };
            let mut rng = SimRng::new(seed);
            let metrics = SingleHopSession::run(&cfg, &mut rng);
            prop_assert!((0.0..=1.0).contains(&metrics.inconsistency), "{protocol}");
            prop_assert!(metrics.receiver_lifetime >= metrics.sender_lifetime - 1e-9);
            prop_assert!(metrics.inconsistent_time <= metrics.receiver_lifetime + 1e-9);
            prop_assert!(metrics.messages.signaling_total() >= 1, "{protocol} sent nothing");
        }
    }

    #[test]
    fn explicit_removal_never_hurts_consistency(params in single_hop_params()) {
        // Adding a best-effort removal message can only shorten the orphan
        // phase, so SS+ER must never be (meaningfully) worse than SS, and
        // SS+RTR never worse than SS+RT.
        let i = |p: Protocol| {
            SingleHopModel::new(p, params).unwrap().solve().unwrap().inconsistency
        };
        prop_assert!(i(Protocol::SsEr) <= i(Protocol::Ss) * 1.0001 + 1e-12);
        prop_assert!(i(Protocol::SsRtr) <= i(Protocol::SsRt) * 1.0001 + 1e-12);
    }

    #[test]
    fn reliable_triggers_never_hurt_consistency(params in single_hop_params()) {
        let i = |p: Protocol| {
            SingleHopModel::new(p, params).unwrap().solve().unwrap().inconsistency
        };
        prop_assert!(i(Protocol::SsRt) <= i(Protocol::Ss) * 1.0001 + 1e-12);
        prop_assert!(i(Protocol::SsRtr) <= i(Protocol::SsEr) * 1.0001 + 1e-12);
    }

    #[test]
    fn multi_hop_model_is_well_behaved(
        hops in 1usize..30,
        loss in 0.0f64..0.3,
        delay in 0.005f64..0.2,
        update in 10.0f64..300.0,
        refresh in 1.0f64..30.0,
    ) {
        let params = MultiHopParams {
            hops,
            loss,
            delay,
            update_rate: 1.0 / update,
            refresh_timer: refresh,
            timeout_timer: 3.0 * refresh,
            retrans_timer: 2.0 * delay,
            false_signal_rate: 1e-6,
        };
        for protocol in Protocol::MULTI_HOP {
            let s = MultiHopModel::new(protocol, params)
                .expect("valid")
                .solve()
                .expect("solvable");
            prop_assert!((0.0..=1.0).contains(&s.inconsistency), "{protocol}");
            prop_assert_eq!(s.per_hop_inconsistency.len(), hops);
            for w in s.per_hop_inconsistency.windows(2) {
                prop_assert!(w[1] + 1e-9 >= w[0], "{protocol}: per-hop not monotone");
            }
            prop_assert!(s.message_rate >= 0.0);
            let total: f64 = s.stationary.values().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }
}

#[test]
fn timer_mode_changes_little_at_the_paper_defaults() {
    // Deterministic vs exponential protocol timers: the difference is small
    // for the protocols that either have no state-timeout timer (HS) or
    // recover from a false timeout immediately via the removal notification
    // (SS+RTR).  For the refresh-repaired soft-state variants an exponential
    // timeout races the refresh timer and false removals dominate — that
    // known model gap is covered by
    // `compare::tests::fully_exponential_timeout_race_is_a_known_model_gap`.
    let params = SingleHopParams::kazaa_defaults()
        .with_mean_lifetime(400.0)
        .with_mean_update_interval(40.0);
    for protocol in [Protocol::SsRtr, Protocol::Hs] {
        let run = |mode: TimerMode| {
            let cfg = SessionConfig {
                timer_mode: mode,
                delay_mode: TimerMode::Deterministic,
                ..SessionConfig::deterministic(protocol, params)
            };
            signaling::Campaign::new(cfg, 200, 9)
                .parallel(true)
                .run()
                .inconsistency
                .mean
        };
        let det = run(TimerMode::Deterministic);
        let exp = run(TimerMode::Exponential);
        assert!(
            (det - exp).abs() < 0.02,
            "{protocol}: deterministic {det} vs exponential {exp}"
        );
    }
}
