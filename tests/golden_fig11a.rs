//! Golden test pinning the fig11a JSON byte-for-byte.
//!
//! Figure 11(a) exercises the full simulation stack — event queue, timers,
//! protocols, campaigns, the sweep fan-out and the JSON renderer — so any
//! unintended behavior change anywhere in that stack shows up here as a
//! byte diff.  The fixture was recorded before the slab event-queue rewrite
//! and must stay stable across engine refactors; regenerate it (only after
//! establishing the change is intended) with:
//!
//! ```text
//! cargo run --release --example dump_fig11a > tests/golden/fig11a_quick_serial.json
//! ```

use signaling::experiment::{ExperimentId, ExperimentOptions};
use signaling::report::render_json;
use signaling::{Assignment, ExecutionPolicy, Protocol, ProtocolSpec, ReplicationEngine};

const GOLDEN: &str = include_str!("golden/fig11a_quick_serial.json");

fn fig11a_json(execution: ExecutionPolicy) -> String {
    let options = ExperimentOptions::quick().with_execution(execution);
    let out = ExperimentId::Fig11a.run_with(&options);
    render_json(out.as_figure().expect("fig11a is a figure"))
}

#[test]
fn fig11a_quick_serial_matches_the_committed_golden_json() {
    // The example appends a trailing newline via println!.
    let fresh = fig11a_json(ExecutionPolicy::Serial) + "\n";
    assert_eq!(
        fresh, GOLDEN,
        "fig11a output drifted from tests/golden/fig11a_quick_serial.json"
    );
}

#[test]
fn fig11a_via_protocol_spec_presets_matches_the_golden_json() {
    // The protocol-layer redesign guarantee: running the figure over the
    // five mechanism-composition presets — through the options-level
    // protocol override, i.e. the `repro --protocols` path — produces
    // byte-for-byte the JSON the closed-enum path recorded.  The fixture
    // predates `ProtocolSpec` and is unchanged.
    let options = ExperimentOptions::quick()
        .with_execution(ExecutionPolicy::Serial)
        .with_protocols(ProtocolSpec::PAPER.to_vec());
    let out = ExperimentId::Fig11a.run_with(&options);
    let fresh = render_json(out.as_figure().expect("fig11a is a figure")) + "\n";
    assert_eq!(
        fresh, GOLDEN,
        "the ProtocolSpec preset path drifted from the recorded enum-path output"
    );

    // And the enum names are literally the presets (conversion is identity
    // on every mechanism knob).
    let via_enum: Vec<ProtocolSpec> = Protocol::ALL.iter().map(|p| p.spec()).collect();
    assert_eq!(via_enum, ProtocolSpec::PAPER.to_vec());
}

#[test]
fn fig11a_is_bit_identical_under_every_execution_policy() {
    // The sweep layer fans campaigns out with the work-stealing assignment;
    // outputs must be byte-identical to serial execution regardless.
    let serial = fig11a_json(ExecutionPolicy::Serial);
    for n in [2, 4, 16] {
        assert_eq!(
            serial,
            fig11a_json(ExecutionPolicy::threads(n)),
            "Threads({n}) diverged from Serial"
        );
    }
}

#[test]
fn engine_outputs_are_identical_across_all_assignments() {
    // Determinism at the engine level, through the facade's re-exports:
    // Serial ≡ Threads(n)+Contiguous ≡ Striped ≡ WorkStealing.
    let task = |i: u64| (i * 2654435761) % 97;
    let serial = ReplicationEngine::new(ExecutionPolicy::Serial).run(41, &task);
    for assignment in [
        Assignment::Contiguous,
        Assignment::Striped,
        Assignment::WorkStealing,
    ] {
        let parallel = ReplicationEngine::new(ExecutionPolicy::threads(4))
            .with_assignment(assignment)
            .run(41, &task);
        assert_eq!(serial, parallel, "{assignment:?} diverged");
    }
}
