//! Docs that claim to be generated must actually match the generator.
//!
//! `docs/protocols.md` embeds the mechanism matrix that
//! `siganalytic::fsm::mechanism_matrix` renders from the declarative
//! transition tables; this test pins the embedded block to the generator's
//! output byte-for-byte.  Regenerate the doc block by pasting the test's
//! expected output on mismatch.

use siganalytic::ProtocolSpec;

#[test]
fn protocols_doc_embeds_the_generated_mechanism_matrix() {
    let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/protocols.md"));
    let matrix = siganalytic::fsm::mechanism_matrix(&ProtocolSpec::PAPER);
    assert!(
        doc.contains(&matrix),
        "docs/protocols.md matrix is out of sync; regenerate it with:\n{matrix}"
    );
}

#[test]
fn protocols_doc_documents_the_label_scheme_anchors() {
    let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/protocols.md"));
    // The documented anchor codes really are the presets' codes.
    for (preset, code) in [
        (ProtocolSpec::SS, "spec:btb--"),
        (ProtocolSpec::HS, "spec:--rrn"),
        (ProtocolSpec::SS_RTR, "spec:btrrn"),
    ] {
        assert_eq!(
            format!("spec:{}", siganalytic::fsm::mechanism_code(&preset)),
            code
        );
        assert!(doc.contains(code), "{code} missing from docs/protocols.md");
    }
}
